package gate

// Transparent mid-stream failover for /v1/stream.
//
// The stream relay tees the client's uplink through a bounded replay journal
// (journal.go) and parses the backend's NDJSON downlink line by line. When
// the backend dies mid-stream — a transport error, an unexpected EOF, or a
// typed retryable error line like shutting_down — the relay reopens the
// stream on the ring's next routable backend, replays the retained journal
// with the resume handshake (wire.ResumeFromHeader), suppresses the replayed
// beats the client already has (every beat with sample index at or below the
// delivery watermark — exact, because refractory arbitration makes beat
// positions strictly monotone), and resumes live relaying. The journal
// retains at least the deterministic-resync bound of samples
// (pipeline.ResyncWarmup), so every beat past the watermark is bit-identical
// to what the uninterrupted backend would have sent.
//
// Failure-cause taxonomy (what does and does not fail over):
//
//   - transport errors opening or reading the backend response → failover;
//   - mid-stream typed retryable error lines (server_overloaded,
//     shutting_down, …) → failover, line withheld;
//   - open-time typed refusals (a shed 503, unknown model, bad request) →
//     relayed verbatim, NO failover: the affine backend's answer is the
//     answer, and capacity attribution must stay honest;
//   - non-retryable mid-stream error lines (bad_input for a torn frame) →
//     forwarded verbatim, stream over;
//   - an unparseable uplink poisons the journal: sample accounting is gone,
//     failover is disabled, bytes flow through raw and the backend's own
//     typed verdict reaches the client untouched.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"rpbeat/internal/apierr"
	"rpbeat/internal/wire"
)

// maxRelayLineBytes bounds one NDJSON uplink line in the journal pump — the
// same bound internal/serve enforces, so the pump never retains more of a
// line than the backend would accept.
const maxRelayLineBytes = 8 << 20

var errAttemptSuperseded = errors.New("gate: relay attempt superseded by failover")

// relayStream is the stream relay path with transparent failover. It
// replaces relayTo for POST /v1/stream whenever Config.FailoverWindow is
// not negative.
func (g *Gateway) relayStream(w http.ResponseWriter, r *http.Request, b *backend) {
	select {
	case <-g.closed:
		writeErr(w, apierr.New(apierr.CodeShuttingDown, "gateway draining"))
		return
	default:
	}
	g.inflight.Add(1)
	defer g.inflight.Done()

	rc := http.NewResponseController(w)
	if err := rc.EnableFullDuplex(); err != nil && r.ProtoMajor == 1 {
		writeErr(w, apierr.New(apierr.CodeInternal, "full-duplex streaming unsupported: %v", err))
		return
	}

	j := newJournal(g.failoverWindow)
	var pump sync.WaitGroup
	pump.Add(1)
	go func() {
		defer pump.Done()
		pumpUplink(r.Body, wire.IsSampleContentType(r.Header.Get("Content-Type")), j)
	}()
	defer func() {
		// The pump must not touch r.Body after this handler returns: close
		// the journal, break any read still blocked on a quiet client with
		// an immediate deadline, and only then hand the connection back.
		j.close()
		rc.SetReadDeadline(time.Now())
		pump.Wait()
	}()

	bp := g.bufs.Get().(*[]byte)
	defer g.bufs.Put(bp)
	d := &downlink{w: w, flush: rc.Flush, watermark: -1, buf: *bp}

	key := affinityKey(r)
	attemptsLeft := len(g.Members()) // every backend gets at most one shot
	headersSent := false
	cur := b
	for attempt := 0; ; attempt++ {
		attemptsLeft--
		gen, base := j.resetForAttempt()
		pr, pw := io.Pipe()
		go runSender(j, gen, pw)

		out, err := http.NewRequestWithContext(r.Context(), http.MethodPost, cur.url+r.URL.RequestURI(), pr)
		if err != nil {
			pw.CloseWithError(err)
			g.failStream(w, rc.Flush, headersSent, d,
				apierr.New(apierr.CodeInternal, "gateway: building backend request: %v", err))
			return
		}
		out.Header = r.Header.Clone()
		for _, h := range hopHeaders {
			out.Header.Del(h)
		}
		if attempt > 0 {
			out.Header.Set(wire.ResumeFromHeader, strconv.FormatInt(base, 10))
		}

		cur.inflight.Add(1)
		resp, err := g.client.Do(out)
		if err != nil {
			cur.inflight.Add(-1)
			if r.Context().Err() != nil {
				if !headersSent {
					writeErr(w, r.Context().Err()) // the client gave up, not the backend
				}
				return
			}
			g.noteBackendError(cur, err)
			next := g.failoverSuccessor(key, cur, j, attemptsLeft)
			if next == nil {
				g.failStream(w, rc.Flush, headersSent, d, apierr.New(apierr.CodeServerOverloaded,
					"gateway: backend %s unreachable: %v", cur.url, err))
				return
			}
			g.failovers.Add(1)
			cur = next
			continue
		}

		if resp.StatusCode != http.StatusOK {
			if resp.StatusCode == http.StatusServiceUnavailable || resp.StatusCode == http.StatusTooManyRequests {
				cur.refused.Add(1)
			}
			if !headersSent {
				// An open-time typed refusal relays verbatim; see the
				// taxonomy above.
				hdr := w.Header()
				for k, vv := range resp.Header {
					hdr[k] = vv
				}
				for _, h := range hopHeaders {
					hdr.Del(h)
				}
				hdr.Set("X-Rpgate-Backend", cur.url)
				w.WriteHeader(resp.StatusCode)
				RelayCopy(w, rc.Flush, resp.Body, d.buf)
				resp.Body.Close()
				cur.inflight.Add(-1)
				return
			}
			// A successor refused the resumed stream; try the next one.
			drainClose(resp.Body)
			cur.inflight.Add(-1)
			next := g.failoverSuccessor(key, cur, j, attemptsLeft)
			if next == nil {
				g.failStream(w, rc.Flush, headersSent, d, apierr.New(apierr.CodeServerOverloaded,
					"gateway: no backend accepted the resumed stream"))
				return
			}
			cur = next
			continue
		}

		if !headersSent {
			hdr := w.Header()
			for k, vv := range resp.Header {
				hdr[k] = vv
			}
			for _, h := range hopHeaders {
				hdr.Del(h)
			}
			hdr.Set("X-Rpgate-Backend", cur.url)
			w.WriteHeader(resp.StatusCode)
			headersSent = true
		}

		outcome := d.run(resp.Body, attempt > 0, j)
		resp.Body.Close()
		cur.inflight.Add(-1)
		switch outcome {
		case outDone:
			cur.relayed.Add(1)
			return
		case outFatal, outClientGone:
			return
		default: // outFailover
			if d.causeTransport {
				g.noteBackendError(cur, d.cause)
			}
			next := g.failoverSuccessor(key, cur, j, attemptsLeft)
			if next == nil {
				g.failStream(w, rc.Flush, headersSent, d, apierr.New(apierr.CodeServerOverloaded,
					"gateway: backend %s lost mid-stream: %v", cur.url, d.cause))
				return
			}
			g.failovers.Add(1)
			cur = next
		}
	}
}

// failoverSuccessor resolves where a torn stream resumes: the next routable
// backend for its key that is not the one that just failed — provided the
// journal is still exact and the attempt budget is not spent.
func (g *Gateway) failoverSuccessor(key string, dead *backend, j *journal, attemptsLeft int) *backend {
	if attemptsLeft <= 0 || !j.exact() {
		return nil
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	usable := func(member string) bool {
		bk := g.backends[member]
		return bk != dead && bk.routable()
	}
	if key == "" {
		n := len(g.members)
		if n == 0 {
			return nil
		}
		start := int(g.rr.Add(1)-1) % n
		for i := 0; i < n; i++ {
			if m := g.members[(start+i)%n]; usable(m) {
				return g.backends[m]
			}
		}
		return nil
	}
	m, ok := g.ring.LookupFunc(key, usable)
	if !ok {
		return nil
	}
	return g.backends[m]
}

// failStream ends a stream the relay could not save. Before headers: a plain
// typed response. Mid-stream: the backend's own withheld error line when
// there is one (it said why it stopped; no successor could take over), the
// gateway's typed trailing line otherwise — a contract error either way,
// never a torn line.
func (g *Gateway) failStream(w http.ResponseWriter, flush func() error, headersSent bool, d *downlink, ae *apierr.Error) {
	if !headersSent {
		writeErr(w, ae)
		return
	}
	if len(d.heldLine) > 0 {
		w.Write(d.heldLine)
		flush()
		return
	}
	bp := lineBufs.Get().(*[]byte)
	line := wire.AppendError((*bp)[:0], string(ae.Code), ae.Message)
	w.Write(line)
	flush()
	*bp = line[:0]
	lineBufs.Put(bp)
}

// runSender follows the journal cursor for one relay attempt, writing each
// entry to the backend request body. It exits when the attempt is superseded
// by a failover, the relay is torn down, or the journal drains after uplink
// EOF — the last closes the body cleanly so the backend flushes its pipeline
// and writes the done line.
func runSender(j *journal, gen int, pw *io.PipeWriter) {
	var buf []byte
	for {
		view, ok := j.next(gen, buf)
		if !ok {
			if j.uplinkDone(gen) {
				pw.Close()
			} else {
				pw.CloseWithError(errAttemptSuperseded)
			}
			return
		}
		buf = view
		if _, err := pw.Write(view); err != nil {
			return
		}
	}
}

// --- uplink pump ---

// pumpUplink parses the client's upload into journal entries: binary frames
// or NDJSON chunk lines, kept verbatim (replayed bytes are the client's
// bytes, never a re-encoding) with their sample counts. A payload the pump
// cannot parse poisons the journal and the remaining bytes flow through raw.
func pumpUplink(body io.Reader, isBinary bool, j *journal) {
	if isBinary {
		var buf []byte
		for {
			frame, count, err := wire.ReadRawFrame(body, buf)
			if err == io.EOF {
				j.finish()
				return
			}
			if err != nil {
				var fe *wire.FrameError
				if errors.As(err, &fe) || errors.Is(err, wire.ErrFrameTooLarge) {
					poisonRest(j, frame, body)
				} else {
					j.finish() // client-side transport error: nothing more is coming
				}
				return
			}
			if !j.append(frame, count) {
				return
			}
			buf = frame
		}
	}
	br := bufio.NewReaderSize(body, 64<<10)
	line := make([]byte, 0, 4096)
	var samples []int32
	for {
		chunk, err := br.ReadSlice('\n')
		line = append(line, chunk...)
		if err == bufio.ErrBufferFull {
			if len(line) > maxRelayLineBytes {
				poisonRest(j, line, br) // the backend will refuse it; just carry the bytes
				return
			}
			continue
		}
		if err != nil {
			// EOF or a client transport error. A final unterminated line
			// still journals verbatim — the backend accepts it without its
			// newline, exactly as it arrived.
			if len(line) > 0 {
				n, perr := countChunkSamples(&samples, line)
				if perr != nil {
					poisonRest(j, line, br)
					return
				}
				if !j.append(line, n) {
					return
				}
			}
			j.finish()
			return
		}
		n, perr := countChunkSamples(&samples, line)
		if perr != nil {
			poisonRest(j, line, br)
			return
		}
		if !j.append(line, n) {
			return
		}
		line = line[:0]
	}
}

// countChunkSamples parses one NDJSON chunk line (newline included) exactly
// as the backend will and returns its sample count. Blank lines count zero —
// the backend skips them.
func countChunkSamples(scratch *[]int32, line []byte) (int, error) {
	trimmed := line
	if n := len(trimmed); n > 0 && trimmed[n-1] == '\n' {
		trimmed = trimmed[:n-1]
	}
	if n := len(trimmed); n > 0 && trimmed[n-1] == '\r' {
		trimmed = trimmed[:n-1]
	}
	if len(trimmed) == 0 {
		return 0, nil
	}
	s, err := wire.ParseChunk((*scratch)[:0], trimmed)
	if err != nil {
		return 0, err
	}
	*scratch = s
	return len(s), nil
}

// poisonRest disables failover (the journal's sample accounting just broke),
// journals whatever partial bytes are pending, and pumps the rest of the
// uplink through raw so the backend can deliver its own typed verdict.
func poisonRest(j *journal, pending []byte, rest io.Reader) {
	j.poison()
	if len(pending) > 0 {
		if !j.append(pending, 0) {
			return
		}
	}
	pumpRaw(rest, j)
}

func pumpRaw(r io.Reader, j *journal) {
	buf := make([]byte, 32<<10)
	for {
		n, err := r.Read(buf)
		if n > 0 {
			if !j.append(buf[:n], 0) {
				return
			}
		}
		if err != nil {
			j.finish()
			return
		}
	}
}

// --- downlink ---

// relayOutcome is how one backend attempt's downlink ended.
type relayOutcome int

const (
	outDone       relayOutcome = iota // done line delivered; stream complete
	outFatal                          // non-retryable error line forwarded; stream over
	outClientGone                     // the client side failed; nothing to save
	outFailover                       // the backend was lost or bowed out retryably
)

var (
	beatPrefix = []byte(`{"sample":`)
	donePrefix = []byte(`{"done":`)
	errPrefix  = []byte(`{"error":`)
)

// downlink parses backend response bytes line by line, forwarding whole
// lines to the client: duplicates of already-delivered beats are suppressed
// by sample index, the done line is rewritten with stream totals after a
// failover, and protocol lines decide the attempt's outcome. State persists
// across attempts — the watermark and delivered count are per-stream.
type downlink struct {
	w     io.Writer
	flush func() error

	watermark int64 // sample index of the last beat delivered to the client
	delivered int   // beat lines delivered across all attempts

	carry []byte // partial trailing line of the current attempt
	buf   []byte // pooled read buffer

	// outFailover detail for the caller.
	cause          error
	causeTransport bool   // counts against the backend's failure budget
	heldLine       []byte // the withheld retryable error line, verbatim
}

// run relays one backend attempt's response body. rewrite is set on failover
// attempts: replayed duplicates are suppressed and the done line is
// rewritten with stream totals. A stream that never failed over forwards its
// bytes verbatim.
func (d *downlink) run(body io.Reader, rewrite bool, j *journal) relayOutcome {
	d.carry = d.carry[:0]
	d.heldLine = d.heldLine[:0]
	d.cause = nil
	d.causeTransport = false
	for {
		n, err := body.Read(d.buf)
		if n > 0 {
			if out, ended := d.process(d.buf[:n], rewrite, j); ended {
				return out
			}
		}
		if err != nil {
			// The body ended without a done line: the backend died. (EOF
			// here is just death on a line boundary; a partial carry line is
			// discarded — its beats replay whole on the next attempt, so the
			// client never sees a torn line.)
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			d.cause = err
			d.causeTransport = true
			return outFailover
		}
	}
}

// process scans one read's worth of downlink bytes, coalescing forwarded
// lines into spans (one client write per contiguous run, one flush per
// read). ended=true means this read decided the attempt's outcome.
func (d *downlink) process(p []byte, rewrite bool, j *journal) (out relayOutcome, ended bool) {
	data := p
	if len(d.carry) > 0 {
		d.carry = append(d.carry, p...)
		data = d.carry
	}
	span := -1 // start of the pending forward span
	wrote := false
	emit := func(end int) bool { // close the open span; false = client gone
		if span >= 0 && end > span {
			if _, err := d.w.Write(data[span:end]); err != nil {
				return false
			}
			wrote = true
		}
		span = -1
		return true
	}
	i := 0
	for {
		nl := bytes.IndexByte(data[i:], '\n')
		if nl < 0 {
			break
		}
		lineEnd := i + nl + 1
		line := data[i:lineEnd]
		switch {
		case bytes.HasPrefix(line, beatPrefix):
			s, ok := parseBeatSample(line)
			if ok && s <= d.watermark {
				// A replayed duplicate the client already has.
				if !emit(i) {
					return outClientGone, true
				}
			} else {
				if span < 0 {
					span = i
				}
				if ok {
					d.watermark = s
					d.delivered++
					// Anchor journal retention: this beat is
					// committed to the client, so replay never
					// needs to reach past window samples before
					// it.
					j.ack(s + 1)
				}
			}
		case bytes.HasPrefix(line, donePrefix):
			if rewrite {
				if !emit(i) {
					return outClientGone, true
				}
				if !d.writeDoneLine(line, j) {
					return outClientGone, true
				}
			} else {
				if span < 0 {
					span = i
				}
				if !emit(lineEnd) {
					return outClientGone, true
				}
			}
			d.flush()
			return outDone, true
		case bytes.HasPrefix(line, errPrefix):
			code := errorLineCode(line)
			if code != "" && (&apierr.Error{Code: code}).Retryable() && j.exact() {
				// The backend bowed out retryably mid-stream: withhold the
				// line; the caller fails over, or forwards it when it can't.
				if !emit(i) {
					return outClientGone, true
				}
				if wrote {
					d.flush()
				}
				d.heldLine = append(d.heldLine[:0], line...)
				d.cause = apierr.New(code, "backend ended the stream retryably")
				d.causeTransport = false
				d.carry = d.carry[:0]
				return outFailover, true
			}
			if span < 0 {
				span = i
			}
			if !emit(lineEnd) {
				return outClientGone, true
			}
			d.flush()
			return outFatal, true
		default:
			// Unknown line shape: forward it untouched.
			if span < 0 {
				span = i
			}
		}
		i = lineEnd
	}
	if !emit(i) {
		return outClientGone, true
	}
	// Stash the partial trailing line. copy handles the overlapping
	// merged-carry case; append the fresh-read one.
	tail := data[i:]
	if len(d.carry) > 0 {
		d.carry = d.carry[:copy(d.carry, tail)]
	} else {
		d.carry = append(d.carry[:0], tail...)
	}
	if wrote {
		if err := d.flush(); err != nil {
			return outClientGone, true
		}
	}
	return 0, false
}

// writeDoneLine rewrites the backend's done summary with stream-total
// accounting: beats as delivered to the client across every attempt, samples
// as journaled from the client's own uplink.
func (d *downlink) writeDoneLine(line []byte, j *journal) bool {
	var dn struct {
		Model string `json:"model"`
	}
	json.Unmarshal(line, &dn)
	bp := lineBufs.Get().(*[]byte)
	out := wire.AppendStreamDone((*bp)[:0], dn.Model, d.delivered, int(j.samples()))
	_, err := d.w.Write(out)
	*bp = out[:0]
	lineBufs.Put(bp)
	return err == nil
}

// parseBeatSample extracts the sample index from a beat line — the bytes
// right after {"sample": — without a JSON decode.
func parseBeatSample(line []byte) (int64, bool) {
	p := line[len(beatPrefix):]
	var v int64
	i := 0
	for ; i < len(p) && p[i] >= '0' && p[i] <= '9'; i++ {
		v = v*10 + int64(p[i]-'0')
	}
	return v, i > 0
}

// errorLineCode decodes the typed code of an {"error":{...}} line, "" when
// the line is not one.
func errorLineCode(line []byte) apierr.Code {
	var body struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if json.Unmarshal(line, &body) != nil {
		return ""
	}
	return apierr.Code(body.Error.Code)
}
