package gate

// Benchmark access to unexported hot paths. cmd/rpbench records the replay
// journal's steady-state append cost in the gateway/failover rows; the
// journal type itself stays private to the package.

// JournalBench drives one replay journal through its steady-state cycle —
// append a unit, sender copy-out, delivery ack — exactly as a live relay
// does once warm. Warm it up for a few hundred steps before measuring so
// the arena and entry ring reach their recycled fixed point.
type JournalBench struct {
	j     *journal
	gen   int
	buf   []byte
	raw   []byte
	unit  int64
	total int64
}

// NewJournalBench builds a journal with the given retention window and a
// synthetic uplink unit of unitBytes bytes carrying unitSamples samples.
func NewJournalBench(window, unitBytes, unitSamples int) *JournalBench {
	b := &JournalBench{
		j:    newJournal(window),
		raw:  make([]byte, unitBytes),
		buf:  make([]byte, 0, unitBytes),
		unit: int64(unitSamples),
	}
	for i := range b.raw {
		b.raw[i] = byte(i)
	}
	b.gen, _ = b.j.resetForAttempt()
	return b
}

// Step runs one append+send+ack cycle and reports whether the journal
// accepted it. Steady-state steps allocate nothing.
func (b *JournalBench) Step() bool {
	if !b.j.append(b.raw, int(b.unit)) {
		return false
	}
	b.total += b.unit
	var ok bool
	if b.buf, ok = b.j.next(b.gen, b.buf); !ok {
		return false
	}
	b.j.ack(b.total)
	return true
}
