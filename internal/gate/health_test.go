package gate

// Probe-loop conformance: the background health loop must never let a slow
// /healthz stack probe rounds on top of each other, and its failure backoff
// must be deterministic per (backend, failure count) while still spreading
// distinct backends apart.

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestProbeJitterDeterministicBounds pins probeJitter: same key, same
// delay; every delay inside ±25% of base; and the offsets actually spread —
// across failure counts and across backends.
func TestProbeJitterDeterministicBounds(t *testing.T) {
	base := time.Second
	lo, hi := base*3/4, base*5/4

	byFails := map[time.Duration]bool{}
	for fails := int64(1); fails <= 8; fails++ {
		d := probeJitter("http://b1:8080", fails, base)
		if d != probeJitter("http://b1:8080", fails, base) {
			t.Fatalf("jitter not deterministic for fails=%d", fails)
		}
		if d < lo || d >= hi {
			t.Fatalf("jitter %v outside [%v, %v) at fails=%d", d, lo, hi, fails)
		}
		byFails[d] = true
	}
	if len(byFails) < 2 {
		t.Fatal("jitter is constant across failure counts")
	}

	byURL := map[time.Duration]bool{}
	for i := 0; i < 8; i++ {
		byURL[probeJitter(fmt.Sprintf("http://b%d:8080", i), 1, base)] = true
	}
	if len(byURL) < 2 {
		t.Fatal("jitter is constant across backends")
	}
}

// TestHealthProbesDoNotStack runs the real background loop against a
// backend whose /healthz is slower than the probe interval. The timer is
// re-armed only after a round completes, so consecutive probes of the same
// backend must never overlap and must stay at least the interval apart —
// a hung fleet degrades probe freshness, never probe concurrency.
func TestHealthProbesDoNotStack(t *testing.T) {
	const (
		interval = 100 * time.Millisecond
		slow     = 50 * time.Millisecond
	)
	var mu sync.Mutex
	var inflight, maxInflight int
	var starts, ends []time.Time
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" {
			w.Header().Set("Content-Type", "application/json")
			w.Write([]byte(`{"models":[]}`))
			return
		}
		mu.Lock()
		inflight++
		if inflight > maxInflight {
			maxInflight = inflight
		}
		starts = append(starts, time.Now())
		mu.Unlock()
		time.Sleep(slow)
		mu.Lock()
		inflight--
		ends = append(ends, time.Now())
		mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"ok":true}`))
	}))
	defer ts.Close()

	gw, err := New(Config{Backends: []string{ts.URL}, HealthInterval: interval, HealthTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(9 * interval)
	gw.Close() // stops the loop; no probe outlives Close

	mu.Lock()
	defer mu.Unlock()
	if maxInflight != 1 {
		t.Fatalf("probes overlapped: %d concurrent /healthz, want 1", maxInflight)
	}
	if len(starts) < 3 {
		t.Fatalf("only %d probe rounds ran, want >= 3", len(starts))
	}
	for i := 1; i < len(starts) && i <= len(ends); i++ {
		if gap := starts[i].Sub(ends[i-1]); gap < interval/2 {
			t.Fatalf("round %d started %v after the previous ended, want >= %v (timer must re-arm after the round)",
				i, gap, interval/2)
		}
	}
}
