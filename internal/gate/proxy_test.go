package gate

// Byte-identity suite: a response relayed through rpgate must be
// indistinguishable from talking to the backend directly — same status, same
// body bytes, same Content-Type, same Retry-After — on the happy paths and
// on every typed error body. The gateway adds routing headers
// (X-Rpgate-Backend) but never rewrites a payload.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"testing"

	"rpbeat/internal/serve"
	"rpbeat/internal/wire"
)

// rawResponse is everything identity cares about.
type rawResponse struct {
	status     int
	body       []byte
	cType      string
	retryAfter string
}

func doRaw(t *testing.T, client *http.Client, base, method, path, cType string, body []byte) rawResponse {
	t.Helper()
	req, err := http.NewRequest(method, base+path, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if cType != "" {
		req.Header.Set("Content-Type", cType)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return rawResponse{
		status:     resp.StatusCode,
		body:       data,
		cType:      resp.Header.Get("Content-Type"),
		retryAfter: resp.Header.Get("Retry-After"),
	}
}

// ndjsonChunks renders samples as the NDJSON chunk uplink format.
func ndjsonChunks(samples []int32, chunk int) []byte {
	var buf bytes.Buffer
	for off := 0; off < len(samples); off += chunk {
		end := off + chunk
		if end > len(samples) {
			end = len(samples)
		}
		buf.WriteString(`{"samples":[`)
		for i, s := range samples[off:end] {
			if i > 0 {
				buf.WriteByte(',')
			}
			fmt.Fprintf(&buf, "%d", s)
		}
		buf.WriteString("]}\n")
	}
	return buf.Bytes()
}

// TestProxyByteIdentity replays the same request direct and through a
// single-backend gateway and requires identical observable responses, happy
// paths and typed errors alike.
func TestProxyByteIdentity(t *testing.T) {
	s := newGateStack(t, 1, serve.HandlerConfig{}, Config{})
	defer s.Close()
	s.gw.CheckNow(context.Background())
	b := s.backends[0]

	lead := testLead(8, 41)
	frames := mustFrame(t, lead)
	classifyJSON := []byte(fmt.Sprintf(`{"model":"m","samples":%s}`,
		bytes.TrimSuffix(bytes.TrimPrefix(ndjsonChunks(lead, len(lead)), []byte(`{"samples":`)), []byte("}\n"))))

	// A frame whose header claims more samples than MaxFrameSamples allows:
	// typed refusal before any allocation.
	oversized := make([]byte, 16)
	copy(oversized, frames[:4])
	oversized[4], oversized[5], oversized[6], oversized[7] = 0xff, 0xff, 0xff, 0x7f

	cases := []struct {
		name, method, path, cType string
		body                      []byte
		wantStatus                int
	}{
		{"classify json", http.MethodPost, "/v1/classify", wire.ContentTypeJSON, classifyJSON, 200},
		{"classify binary", http.MethodPost, "/v1/classify", wire.ContentTypeSamples, frames, 200},
		{"stream ndjson", http.MethodPost, "/v1/stream", wire.ContentTypeNDJSON, ndjsonChunks(lead, 720), 200},
		{"stream binary", http.MethodPost, "/v1/stream", wire.ContentTypeSamples, frames, 200},
		{"models inventory", http.MethodGet, "/v1/models", "", nil, 200},
		{"manifest detail", http.MethodGet, "/v1/models/m@v1", "", nil, 200},
		{"unknown model", http.MethodGet, "/v1/models/nope", "", nil, 404},
		{"classify bad json", http.MethodPost, "/v1/classify", wire.ContentTypeJSON, []byte("{not json"), 400},
		{"classify empty", http.MethodPost, "/v1/classify", wire.ContentTypeJSON, []byte(`{"samples":[]}`), 400},
		{"stream torn frame", http.MethodPost, "/v1/stream", wire.ContentTypeSamples, frames[:len(frames)-3], 0},
		{"classify oversized frame", http.MethodPost, "/v1/classify", wire.ContentTypeSamples, oversized, 0},
		{"wrong method", http.MethodGet, "/v1/classify", "", nil, 405},
		{"unknown route", http.MethodGet, "/v1/bogus", "", nil, 404},
		{"unknown stream model", http.MethodPost, "/v1/stream?model=nope", wire.ContentTypeNDJSON, []byte(""), 404},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			direct := doRaw(t, b.ts.Client(), b.ts.URL, tc.method, tc.path, tc.cType, tc.body)
			relayed := doRaw(t, s.ts.Client(), s.ts.URL, tc.method, tc.path, tc.cType, tc.body)
			if tc.wantStatus != 0 && direct.status != tc.wantStatus {
				t.Fatalf("direct status %d, want %d (body %s)", direct.status, tc.wantStatus, direct.body)
			}
			if relayed.status != direct.status {
				t.Fatalf("status: relayed %d, direct %d", relayed.status, direct.status)
			}
			if !bytes.Equal(relayed.body, direct.body) {
				t.Fatalf("body diverges\nrelayed: %q\ndirect:  %q", relayed.body, direct.body)
			}
			if relayed.cType != direct.cType {
				t.Fatalf("Content-Type: relayed %q, direct %q", relayed.cType, direct.cType)
			}
			if relayed.retryAfter != direct.retryAfter {
				t.Fatalf("Retry-After: relayed %q, direct %q", relayed.retryAfter, direct.retryAfter)
			}
		})
	}
}

// TestProxyByteIdentityOverload: a backend at its stream cap sheds through
// the gateway with the exact bytes it sheds with directly — typed
// server_overloaded body plus Retry-After.
func TestProxyByteIdentityOverload(t *testing.T) {
	s := newGateStack(t, 1, serve.HandlerConfig{MaxStreams: 1}, Config{})
	defer s.Close()
	s.gw.CheckNow(context.Background())
	b := s.backends[0]

	// Occupy the single stream slot with a held-open stream.
	hold := openStream(t, s.ts.Client(), s.ts.URL, "holder", mustFrame(t, testLead(4, 42)))
	defer func() {
		hold.pw.Close()
		io.Copy(io.Discard, hold.br)
		hold.resp.Body.Close()
	}()

	frame := mustFrame(t, testLead(2, 43))
	direct := doRaw(t, b.ts.Client(), b.ts.URL, http.MethodPost, "/v1/stream", wire.ContentTypeSamples, frame)
	relayed := doRaw(t, s.ts.Client(), s.ts.URL, http.MethodPost, "/v1/stream", wire.ContentTypeSamples, frame)

	if direct.status != http.StatusServiceUnavailable {
		t.Fatalf("direct shed status %d, want 503 (body %s)", direct.status, direct.body)
	}
	if direct.retryAfter == "" {
		t.Fatal("direct shed missing Retry-After")
	}
	if relayed.status != direct.status || !bytes.Equal(relayed.body, direct.body) ||
		relayed.retryAfter != direct.retryAfter || relayed.cType != direct.cType {
		t.Fatalf("shed response diverges\nrelayed: %d %q RA=%q CT=%q\ndirect:  %d %q RA=%q CT=%q",
			relayed.status, relayed.body, relayed.retryAfter, relayed.cType,
			direct.status, direct.body, direct.retryAfter, direct.cType)
	}
}
