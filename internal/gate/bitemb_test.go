package gate

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"rpbeat/internal/bitemb"
	"rpbeat/internal/catalog"
	"rpbeat/internal/core"
	"rpbeat/internal/rng"
	"rpbeat/internal/rp"
	"rpbeat/internal/serve"
	"rpbeat/internal/wire"
)

// testBitembModel fabricates a structurally valid binary-embedding model
// without the GA (the testModel idiom): fixed seed → fixed bytes → one
// fleet digest.
func testBitembModel(seed uint64) *core.Model {
	r := rng.New(seed)
	const k, d = 8, 50
	bp := &bitemb.Params{K: k, Thresholds: make([]int32, k)}
	for j := range bp.Thresholds {
		bp.Thresholds[j] = int32(r.Intn(4000) - 2000)
	}
	for l := range bp.Protos {
		bp.Protos[l] = make([]uint64, bitemb.Words(k))
		for j := 0; j < k; j++ {
			if r.Intn(2) == 1 {
				bp.Protos[l][j/64] |= 1 << uint(j&63)
			}
		}
		bp.Radii[l] = uint16(k)
	}
	return &core.Model{
		Kind: core.KindBitemb, K: k, D: d, Downsample: 4,
		P: rp.NewVerySparse(r, k, d), Bit: bp, AlphaTrain: 0.1, MinARR: 0.97,
	}
}

func bitembBytes(t *testing.T, seed uint64) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := testBitembModel(seed).WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// streamPinned runs one /v1/stream?model=ref request and returns the full
// NDJSON body.
func streamPinned(t *testing.T, s *gateStack, ref string, frames []byte) []byte {
	t.Helper()
	resp, err := s.ts.Client().Post(s.ts.URL+"/v1/stream?model="+ref, wire.ContentTypeSamples,
		bytes.NewReader(frames))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pinned stream status %d", resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestGatewayBitembFanoutByteIdentical is the acceptance path for the
// binary head at fleet scale: a bitemb model uploaded through the gateway
// fans out to every backend digest-verified (zero gateway changes — it is
// just another model), and a pinned /v1/stream classifies byte-identically
// whether the fleet has one backend or three.
func TestGatewayBitembFanoutByteIdentical(t *testing.T) {
	ctx := context.Background()
	data := bitembBytes(t, 9)
	frames, err := wire.AppendFrame(nil, testLead(30, 11))
	if err != nil {
		t.Fatal(err)
	}

	bodies := map[int][]byte{}
	for _, n := range []int{1, 3} {
		s := newGateStack(t, n, serve.HandlerConfig{}, Config{})
		s.gw.CheckNow(ctx)

		status, body, _ := postBody(t, s.ts.Client(), http.MethodPost,
			s.ts.URL+"/v1/models?name=bin", "application/octet-stream", nil, data)
		if status != http.StatusCreated {
			s.Close()
			t.Fatalf("%d backends: upload status %d: %s", n, status, body)
		}
		var ur UploadResponse
		if err := json.Unmarshal(body, &ur); err != nil {
			t.Fatal(err)
		}
		if ur.Ref != "bin@v1" || len(ur.Backends) != n {
			t.Fatalf("%d backends: upload response %+v", n, ur)
		}
		// Every backend holds the model with the fleet digest and the right
		// kind in its manifest.
		for _, b := range s.backends {
			st, detail, _ := postBody(t, b.ts.Client(), http.MethodGet,
				b.ts.URL+"/v1/models/bin@v1", "", nil, nil)
			if st != http.StatusOK {
				t.Fatalf("backend %s missing bin@v1: %d %s", b.instance, st, detail)
			}
			var man catalog.Manifest
			if err := json.Unmarshal(detail, &man); err != nil {
				t.Fatal(err)
			}
			if man.Digest != ur.Digest {
				t.Fatalf("backend %s digest %s, want %s", b.instance, man.Digest, ur.Digest)
			}
			if man.Kind != "bitemb" {
				t.Fatalf("backend %s manifest kind %q, want bitemb", b.instance, man.Kind)
			}
		}
		// After the fan-out the gateway's divergence check must still pass.
		s.gw.CheckNow(ctx)
		for _, b := range s.gw.Status().Backends {
			if b.Divergent {
				t.Fatalf("%d backends: %s divergent after bitemb fan-out: %q", n, b.URL, b.LastErr)
			}
		}

		bodies[n] = streamPinned(t, s, "bin@v1", frames)
		s.Close()
	}

	if len(bodies[1]) == 0 {
		t.Fatal("empty stream body")
	}
	if !bytes.Equal(bodies[1], bodies[3]) {
		t.Fatalf("pinned bitemb stream diverged between 1 and 3 backends:\n1: %s\n3: %s",
			bodies[1], bodies[3])
	}
	// Sanity: the identical bodies actually classified beats.
	if !bytes.Contains(bodies[1], []byte(`"done":true`)) || bytes.Contains(bodies[1], []byte(`"beats":0`)) {
		t.Fatalf("stream summary suspicious: %s", bodies[1])
	}
}
