package gate

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rpbeat/internal/apierr"
	"rpbeat/internal/catalog"
	"rpbeat/internal/core"
	"rpbeat/internal/pipeline"
	"rpbeat/internal/wire"
)

// Config describes a gateway over a pool of rpserve backends.
type Config struct {
	// Backends are the pool's base URLs, e.g. "http://10.0.0.1:8080".
	// Required (at least one); trailing slashes are trimmed, duplicates
	// rejected.
	Backends []string
	// Replicas is the virtual-node count per backend on the hash ring
	// (<= 0 means DefaultReplicas).
	Replicas int
	// HealthInterval paces the background health/catalog probe loop.
	// 0 means DefaultHealthInterval; negative disables the loop entirely
	// (probes then run only through CheckNow — how tests drive the gateway
	// deterministically).
	HealthInterval time.Duration
	// HealthTimeout bounds one backend probe (default 2s).
	HealthTimeout time.Duration
	// FailAfter is how many consecutive probe/relay transport failures mark
	// a backend down (default 2; a single lost packet should not rehash the
	// fleet).
	FailAfter int
	// MaxUploadBytes bounds a fanned-out POST /v1/models body; default
	// core.MaxModelBytes, matching the backends.
	MaxUploadBytes int64
	// FailoverWindow is how many trailing uplink samples each stream's
	// replay journal retains for transparent mid-stream failover
	// (failover.go). 0 selects the deterministic-resync bound —
	// pipeline.ResyncWarmup of the default pipeline, the replay depth that
	// makes post-failover beats bit-identical to an uninterrupted run.
	// Negative disables failover: backend death then surfaces as the
	// trailing typed error line of the plain relay path.
	FailoverWindow int
	// Client overrides the backend-side HTTP client (default: a dedicated
	// one with an unbounded per-host connection pool).
	Client *http.Client
}

// DefaultHealthInterval is the probe cadence when Config leaves it zero.
const DefaultHealthInterval = time.Second

// backend is the gateway's view of one pool member. All fields are atomics:
// the relay path reads them lock-free.
type backend struct {
	url string

	// healthy: the backend answers probes (optimistically true at birth).
	// draining: alive but refusing with a typed retryable code (its own
	// graceful shutdown) — out of rotation without counting as down.
	// divergent: its catalog digest for some ref contradicts the fleet's
	// authoritative view; routing there would classify against different
	// model bytes under the same name@vN.
	healthy   atomic.Bool
	draining  atomic.Bool
	divergent atomic.Bool

	fails     atomic.Int32 // consecutive transport failures
	nextCheck atomic.Int64 // unix nanos of the next due probe (backoff)
	probing   atomic.Bool  // a probe of this backend is in flight

	inflight atomic.Int64
	relayed  atomic.Int64 // responses relayed to completion
	refused  atomic.Int64 // 429/503 responses relayed from this backend
	lost     atomic.Int64 // transport failures talking to this backend
	lastErr  atomic.Value // string
}

func newBackend(url string) *backend {
	b := &backend{url: url}
	b.healthy.Store(true)
	b.lastErr.Store("")
	return b
}

// routable is the relay path's admission check for one backend.
func (b *backend) routable() bool {
	return b.healthy.Load() && !b.draining.Load() && !b.divergent.Load()
}

// Gateway routes client requests onto the backend pool. See the package
// comment for the invariants it keeps.
type Gateway struct {
	replicas       int
	interval       time.Duration // always positive (backoff math); loop gated by runLoop
	runLoop        bool
	timeout        time.Duration
	failAfter      int
	maxUpload      int64
	failoverWindow int // replay journal depth in samples; -1 = failover off
	client         *http.Client
	ownsClient     bool

	// mu guards the membership view. The relay path takes it only for the
	// ring lookup (RLock); rebuilds happen on Add/Remove.
	mu       sync.RWMutex
	members  []string // insertion order (fan-out and probe order)
	ring     *Ring
	backends map[string]*backend

	// catMu guards the authoritative ref -> digest view. First sighting of
	// a ref (an upload fan-out, or the first probe that reports it) becomes
	// authoritative; probes apply in member order, so arbitration is
	// deterministic.
	catMu   sync.Mutex
	digests map[string]string

	rr            atomic.Uint64 // round-robin cursor for keyless requests
	shedNoBackend atomic.Int64  // requests refused because no backend was routable
	failovers     atomic.Int64  // mid-stream failover hops performed

	checkMu  sync.Mutex // one probe round at a time
	inflight sync.WaitGroup
	loopWG   sync.WaitGroup
	closed   chan struct{}
	closeOne sync.Once

	// bufs pools the relay copy buffers; lineBufs (package-level) the typed
	// error lines. Steady-state relaying allocates in neither direction.
	bufs sync.Pool
}

// lineBufs pools the small buffers behind the gateway's typed error bodies
// and trailing NDJSON error lines (the same shape internal/serve writes).
var lineBufs = sync.Pool{New: func() any { b := make([]byte, 0, 1024); return &b }}

// relayBufBytes is the relay copy-buffer size: large enough that a typical
// NDJSON beat burst or binary frame relays in one read+write+flush.
const relayBufBytes = 32 << 10

// New builds a Gateway over cfg.Backends and starts its health loop (unless
// HealthInterval < 0). Backends start optimistically routable; the first
// probe round corrects that picture.
func New(cfg Config) (*Gateway, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("gate: at least one backend required")
	}
	g := &Gateway{
		replicas:  cfg.Replicas,
		interval:  cfg.HealthInterval,
		runLoop:   cfg.HealthInterval >= 0,
		timeout:   cfg.HealthTimeout,
		failAfter: cfg.FailAfter,
		maxUpload: cfg.MaxUploadBytes,
		client:    cfg.Client,
		backends:  make(map[string]*backend, len(cfg.Backends)),
		digests:   make(map[string]string),
		closed:    make(chan struct{}),
	}
	if g.interval <= 0 {
		g.interval = DefaultHealthInterval
	}
	if g.timeout <= 0 {
		g.timeout = 2 * time.Second
	}
	if g.failAfter <= 0 {
		g.failAfter = 2
	}
	if g.maxUpload <= 0 {
		g.maxUpload = core.MaxModelBytes
	}
	switch {
	case cfg.FailoverWindow < 0:
		g.failoverWindow = -1
	case cfg.FailoverWindow == 0:
		g.failoverWindow = pipeline.ResyncWarmup(pipeline.Config{})
	default:
		g.failoverWindow = cfg.FailoverWindow
	}
	if g.client == nil {
		g.ownsClient = true
		g.client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        1024,
			MaxIdleConnsPerHost: 1024,
		}}
	}
	for _, raw := range cfg.Backends {
		u, err := normalizeBackend(raw)
		if err != nil {
			return nil, err
		}
		if _, dup := g.backends[u]; dup {
			return nil, fmt.Errorf("gate: duplicate backend %s", u)
		}
		g.backends[u] = newBackend(u)
		g.members = append(g.members, u)
	}
	g.ring = NewRing(g.members, g.replicas)
	g.bufs.New = func() any { b := make([]byte, relayBufBytes); return &b }
	if g.runLoop {
		g.loopWG.Add(1)
		go g.healthLoop()
	}
	return g, nil
}

// normalizeBackend canonicalizes one backend base URL.
func normalizeBackend(raw string) (string, error) {
	raw = strings.TrimRight(strings.TrimSpace(raw), "/")
	u, err := url.Parse(raw)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return "", fmt.Errorf("gate: backend %q is not an absolute URL", raw)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", fmt.Errorf("gate: backend %q: unsupported scheme %q", raw, u.Scheme)
	}
	return raw, nil
}

// Close drains the gateway: new relays are refused with the typed
// shutting_down error, in-flight relays finish, the health loop stops.
// Idempotent.
func (g *Gateway) Close() {
	g.closeOne.Do(func() { close(g.closed) })
	g.loopWG.Wait()
	g.inflight.Wait()
	if g.ownsClient {
		g.client.CloseIdleConnections()
	}
}

// Add inserts a backend into the pool. Only the ring share its virtual
// nodes cover moves onto it; every other stream keeps its backend.
func (g *Gateway) Add(rawURL string) error {
	u, err := normalizeBackend(rawURL)
	if err != nil {
		return err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, dup := g.backends[u]; dup {
		return fmt.Errorf("gate: backend %s already in pool", u)
	}
	g.backends[u] = newBackend(u)
	g.members = append(g.members, u)
	g.ring = NewRing(g.members, g.replicas)
	return nil
}

// Remove drops a backend from the pool. In-flight relays already bound to
// it complete undisturbed (they hold the *backend, not the map entry); new
// streams that hashed there rehash to the survivors, and only those.
func (g *Gateway) Remove(rawURL string) error {
	u, err := normalizeBackend(rawURL)
	if err != nil {
		return err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.backends[u]; !ok {
		return fmt.Errorf("gate: backend %s not in pool", u)
	}
	delete(g.backends, u)
	for i, m := range g.members {
		if m == u {
			g.members = append(g.members[:i], g.members[i+1:]...)
			break
		}
	}
	g.ring = NewRing(g.members, g.replicas)
	return nil
}

// Members returns the pool's backend URLs in insertion order.
func (g *Gateway) Members() []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return append([]string(nil), g.members...)
}

// BackendFor returns the backend URL a stream key routes to right now
// (health and divergence included), or ok=false when nothing is routable.
// This is the routing decision the relay path makes, exposed for
// conformance tests and operators.
func (g *Gateway) BackendFor(key string) (string, bool) {
	b := g.pick(key)
	if b == nil {
		return "", false
	}
	return b.url, true
}

// pick resolves a stream key to a routable backend: ring affinity for keyed
// requests, round-robin over routable members for keyless ones.
func (g *Gateway) pick(key string) *backend {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if len(g.members) == 0 {
		return nil
	}
	if key == "" {
		n := len(g.members)
		start := int(g.rr.Add(1)-1) % n
		for i := 0; i < n; i++ {
			if b := g.backends[g.members[(start+i)%n]]; b.routable() {
				return b
			}
		}
		return nil
	}
	m, ok := g.ring.LookupFunc(key, func(member string) bool {
		return g.backends[member].routable()
	})
	if !ok {
		return nil
	}
	return g.backends[m]
}

// affinityKey extracts the stream identity a request routes by: the
// X-Stream-Id header (what internal/load sends), falling back to a
// ?stream= query parameter. Empty means no affinity (round-robin).
func affinityKey(r *http.Request) string {
	if id := r.Header.Get("X-Stream-Id"); id != "" {
		return id
	}
	return r.URL.Query().Get("stream")
}

// Handler builds the gateway's HTTP surface. Catalog mutations fan out to
// every backend; everything else relays to the affine backend verbatim.
// Method-less fallback patterns relay too, so a wrong verb or unknown route
// gets the backend's own typed error body, byte-identical to direct access.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", g.health)
	mux.HandleFunc("POST /v1/models", g.uploadModel)
	mux.HandleFunc("DELETE /v1/models/{ref}", g.deleteModel)
	mux.HandleFunc("PUT /v1/default", g.setDefault)
	// Everything else — the data paths, admin reads, wrong verbs, unknown
	// routes — relays. (Without these fallbacks the method-qualified
	// patterns above would turn e.g. GET /v1/models into the mux's
	// plain-text 405 instead of the backend's typed body.)
	for _, path := range []string{"/healthz", "/v1/models", "/v1/models/{ref}", "/v1/default"} {
		mux.HandleFunc(path, g.relay)
	}
	mux.HandleFunc("/", g.relay)
	return mux
}

// writeErr renders a gateway-originated typed error: same pooled
// wire.AppendError body and Retry-After convention as internal/serve, so
// clients cannot tell which tier refused them.
func writeErr(w http.ResponseWriter, err error) {
	ae := apierr.From(err)
	bp := lineBufs.Get().(*[]byte)
	buf := wire.AppendError((*bp)[:0], string(ae.Code), ae.Message)
	if ae.Retryable() {
		w.Header().Set("Retry-After", "1")
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(ae.HTTPStatus())
	w.Write(buf)
	*bp = buf[:0]
	lineBufs.Put(bp)
}

// hopHeaders are the per-connection headers a relay must not forward.
var hopHeaders = []string{
	"Connection", "Proxy-Connection", "Keep-Alive",
	"Te", "Trailer", "Transfer-Encoding", "Upgrade",
}

// relay forwards one request to its affine backend and streams the
// response back verbatim.
func (g *Gateway) relay(w http.ResponseWriter, r *http.Request) {
	b := g.pick(affinityKey(r))
	if b == nil {
		g.shedNoBackend.Add(1)
		writeErr(w, apierr.New(apierr.CodeServerOverloaded, "gateway: no routable backend for this stream"))
		return
	}
	if g.failoverWindow >= 0 && r.Method == http.MethodPost && r.URL.Path == "/v1/stream" {
		g.relayStream(w, r, b)
		return
	}
	g.relayTo(w, r, b)
}

// relayTo is the relay data path. Request bodies stream through to the
// backend (net/http writes the outgoing body concurrently with reading the
// response, so /v1/stream's full-duplex NDJSON works end to end); response
// bodies stream back through a pooled copy buffer with a flush per read.
// Steady-state cost per relayed chunk: zero allocations (RelayCopy).
func (g *Gateway) relayTo(w http.ResponseWriter, r *http.Request, b *backend) {
	select {
	case <-g.closed:
		writeErr(w, apierr.New(apierr.CodeShuttingDown, "gateway draining"))
		return
	default:
	}
	g.inflight.Add(1)
	defer g.inflight.Done()
	b.inflight.Add(1)
	defer b.inflight.Add(-1)

	isStream := r.Method == http.MethodPost && r.URL.Path == "/v1/stream"
	rc := http.NewResponseController(w)
	if isStream {
		// Beat lines must reach the client while its upload is still in
		// flight; without full duplex the HTTP/1 server would discard the
		// remaining request body on the first response write.
		if err := rc.EnableFullDuplex(); err != nil && r.ProtoMajor == 1 {
			writeErr(w, apierr.New(apierr.CodeInternal, "full-duplex streaming unsupported: %v", err))
			return
		}
	}

	out, err := http.NewRequestWithContext(r.Context(), r.Method, b.url+r.URL.RequestURI(), r.Body)
	if err != nil {
		writeErr(w, apierr.New(apierr.CodeInternal, "gateway: building backend request: %v", err))
		return
	}
	out.Header = r.Header.Clone()
	for _, h := range hopHeaders {
		out.Header.Del(h)
	}
	out.ContentLength = r.ContentLength

	resp, err := g.client.Do(out)
	if err != nil {
		if r.Context().Err() != nil {
			writeErr(w, r.Context().Err()) // the client gave up, not the backend
			return
		}
		g.noteBackendError(b, err)
		writeErr(w, apierr.New(apierr.CodeServerOverloaded,
			"gateway: backend %s unreachable: %v", b.url, err))
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusServiceUnavailable || resp.StatusCode == http.StatusTooManyRequests {
		b.refused.Add(1)
	}

	hdr := w.Header()
	for k, vv := range resp.Header {
		hdr[k] = vv
	}
	for _, h := range hopHeaders {
		hdr.Del(h)
	}
	hdr.Set("X-Rpgate-Backend", b.url)
	w.WriteHeader(resp.StatusCode)

	bp := g.bufs.Get().(*[]byte)
	_, cerr := RelayCopy(w, rc.Flush, resp.Body, *bp)
	g.bufs.Put(bp)
	switch {
	case cerr == nil:
		b.relayed.Add(1)
	case isRelayWriteError(cerr) || r.Context().Err() != nil:
		// The client side failed; the backend did nothing wrong.
	default:
		// The backend died mid-response. For a stream, the NDJSON framing
		// lets us append a trailing typed error line — the client sees a
		// contract error, never a torn line (RelayCopy forwards only whole
		// backend writes, and the backend writes whole lines). For one-shot
		// bodies the truncation itself is the client's (transport) signal.
		g.noteBackendError(b, cerr)
		if isStream {
			ebp := lineBufs.Get().(*[]byte)
			line := wire.AppendError((*ebp)[:0], string(apierr.CodeServerOverloaded),
				fmt.Sprintf("gateway: backend %s lost mid-stream: %v", b.url, cerr))
			w.Write(line)
			rc.Flush()
			*ebp = line[:0]
			lineBufs.Put(ebp)
		}
	}
}

// noteBackendError records a transport-level failure against a backend; at
// FailAfter consecutive failures the backend leaves rotation until a probe
// succeeds again.
func (g *Gateway) noteBackendError(b *backend, err error) {
	b.lost.Add(1)
	b.lastErr.Store(err.Error())
	if int(b.fails.Add(1)) >= g.failAfter {
		b.healthy.Store(false)
	}
	b.nextCheck.Store(0) // probe it promptly
}

// RelayCopy is the gateway's relay loop: read from src, write to dst, flush
// after every read so streamed lines reach the client at backend cadence.
// buf is the caller's (pooled) copy buffer; the loop itself is
// allocation-free. Errors from the dst side are distinguishable (they mean
// the client hung up, not the backend) via an errors.As-able wrapper.
//
//rpbeat:allocfree
func RelayCopy(dst io.Writer, flush func() error, src io.Reader, buf []byte) (int64, error) {
	var n int64
	for {
		m, err := src.Read(buf)
		if m > 0 {
			if _, werr := dst.Write(buf[:m]); werr != nil {
				//rpvet:allow allocfree -- error path: the stream is already torn down, one wrapper allocation ends it
				return n, &relayWriteError{werr}
			}
			n += int64(m)
			if flush != nil {
				if ferr := flush(); ferr != nil {
					//rpvet:allow allocfree -- error path: the stream is already torn down, one wrapper allocation ends it
					return n, &relayWriteError{ferr}
				}
			}
		}
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
	}
}

// relayWriteError marks a RelayCopy failure as client-side (dst or flush).
type relayWriteError struct{ err error }

func (e *relayWriteError) Error() string { return "relay write: " + e.err.Error() }
func (e *relayWriteError) Unwrap() error { return e.err }

func isRelayWriteError(err error) bool {
	var we *relayWriteError
	return errors.As(err, &we)
}

// --- health / catalog probing ---

func (g *Gateway) healthLoop() {
	defer g.loopWG.Done()
	// The timer is re-armed only after a round completes: a round slowed by
	// a hung /healthz (each probe bounded by HealthTimeout) pushes the next
	// round back instead of queueing behind it, so probe rounds never stack
	// however slow the fleet gets.
	t := time.NewTimer(g.interval)
	defer t.Stop()
	for {
		select {
		case <-g.closed:
			return
		case <-t.C:
			g.checkRound(context.Background(), false)
			t.Reset(g.interval)
		}
	}
}

// CheckNow runs one full probe round synchronously (every backend,
// backoff ignored). Tests and operators use it; the background loop runs
// the same round on its ticker.
func (g *Gateway) CheckNow(ctx context.Context) { g.checkRound(ctx, true) }

// checkResult is one backend's probe outcome.
type checkResult struct {
	b         *backend
	transport error       // probe never got an HTTP answer
	status    int         // healthz status when it did
	code      apierr.Code // typed code of a non-200 healthz
	refs      map[string]string
}

func (g *Gateway) checkRound(ctx context.Context, force bool) {
	g.checkMu.Lock()
	defer g.checkMu.Unlock()
	g.mu.RLock()
	bs := make([]*backend, 0, len(g.members))
	for _, m := range g.members {
		bs = append(bs, g.backends[m])
	}
	g.mu.RUnlock()

	now := time.Now().UnixNano()
	results := make([]*checkResult, len(bs))
	var wg sync.WaitGroup
	for i, b := range bs {
		if !force && now < b.nextCheck.Load() {
			continue // still backing off
		}
		if !b.probing.CompareAndSwap(false, true) {
			continue // an earlier probe of this backend is still in flight
		}
		wg.Add(1)
		go func(i int, b *backend) {
			defer wg.Done()
			defer b.probing.Store(false)
			results[i] = g.probe(ctx, b)
		}(i, b)
	}
	wg.Wait()
	// Apply sequentially in member order: first-seen digest adoption is
	// then deterministic however the concurrent probes interleaved.
	for _, res := range results {
		if res != nil {
			g.applyProbe(res)
		}
	}
}

// probe asks one backend for /healthz and (when healthy) its catalog
// digests.
func (g *Gateway) probe(ctx context.Context, b *backend) *checkResult {
	res := &checkResult{b: b}
	ctx, cancel := context.WithTimeout(ctx, g.timeout)
	defer cancel()

	resp, err := g.get(ctx, b.url+"/healthz")
	if err != nil {
		res.transport = err
		return res
	}
	res.status = resp.StatusCode
	if resp.StatusCode != http.StatusOK {
		if ae := decodeTypedError(resp.Body); ae != nil {
			res.code = ae.Code
		}
		drainClose(resp.Body)
		return res
	}
	drainClose(resp.Body)

	mresp, err := g.get(ctx, b.url+"/v1/models")
	if err != nil {
		// Healthz answered, so the backend is up; treat a failed catalog
		// read as "no catalog news this round" rather than a death.
		return res
	}
	defer drainClose(mresp.Body)
	if mresp.StatusCode != http.StatusOK {
		return res
	}
	var inv struct {
		Models []struct {
			Name    string `json:"name"`
			Version int    `json:"version"`
			Digest  string `json:"digest"`
		} `json:"models"`
	}
	if err := json.NewDecoder(io.LimitReader(mresp.Body, 4<<20)).Decode(&inv); err != nil {
		return res
	}
	res.refs = make(map[string]string, len(inv.Models))
	for _, m := range inv.Models {
		res.refs[fmt.Sprintf("%s@v%d", m.Name, m.Version)] = m.Digest
	}
	return res
}

func (g *Gateway) get(ctx context.Context, url string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	return g.client.Do(req)
}

// probeJitter spreads a backoff delay deterministically across ±25% of
// base, keyed by backend URL and failure count: the same gateway re-probes
// the same dead backend on the same schedule run after run (reproducible
// tests), while distinct gateways — or successive failures — land at
// different offsets instead of hammering in lockstep. FNV-1a folds the key,
// splitmix64 whitens it, mirroring faultinject's Plan derivation.
func probeJitter(url string, fails int64, base time.Duration) time.Duration {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(url); i++ {
		h = (h ^ uint64(url[i])) * 0x100000001b3
	}
	h ^= uint64(fails)
	h += 0x9e3779b97f4a7c15
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	h ^= h >> 31
	// h%2048 maps to [-25%, +25%) of base in 1/4096 steps.
	off := (int64(h%2048) - 1024) * int64(base) / 4096
	return base + time.Duration(off)
}

// applyProbe folds one probe outcome into the backend's routing state.
func (g *Gateway) applyProbe(res *checkResult) {
	b := res.b
	now := time.Now()
	switch {
	case res.transport != nil:
		fails := b.fails.Add(1)
		b.lastErr.Store(res.transport.Error())
		if int(fails) >= g.failAfter {
			b.healthy.Store(false)
		}
		// Jittered exponential backoff on the probe cadence, capped at 8x:
		// a dead backend is not hammered, a flapping one recovers within
		// seconds, and gateways that noticed the same death at the same
		// moment de-synchronize instead of re-probing in lockstep.
		shift := min(int(fails), 3)
		b.nextCheck.Store(now.Add(probeJitter(b.url, int64(fails), g.interval<<shift)).UnixNano())
	case res.status != http.StatusOK:
		// The backend answered, so it is not dead — it is refusing. A typed
		// retryable refusal (shutting_down mid-drain, server_overloaded) is
		// the backend asking out of rotation; honor it without burning the
		// failure budget. A non-retryable non-200 healthz is a broken
		// backend: out of rotation the hard way.
		b.fails.Store(0)
		refusal := apierr.Error{Code: res.code}
		if res.code != "" && refusal.Retryable() {
			b.healthy.Store(true)
			b.draining.Store(true)
			b.lastErr.Store("backend draining: " + string(res.code))
		} else {
			b.healthy.Store(false)
			b.lastErr.Store(fmt.Sprintf("healthz status %d (code %q)", res.status, res.code))
		}
		b.nextCheck.Store(now.Add(g.interval).UnixNano())
	default:
		b.fails.Store(0)
		b.healthy.Store(true)
		b.draining.Store(false)
		b.lastErr.Store("")
		b.nextCheck.Store(now.Add(g.interval).UnixNano())
		if res.refs != nil {
			g.applyCatalog(b, res.refs)
		}
	}
}

// applyCatalog cross-checks one backend's catalog digests against the
// authoritative view, adopting first sightings and flagging divergence.
// A divergent backend re-enters rotation the moment a later probe shows
// its digests matching again (convergence heals, nothing sticks).
func (g *Gateway) applyCatalog(b *backend, refs map[string]string) {
	g.catMu.Lock()
	defer g.catMu.Unlock()
	diverged := ""
	for ref, digest := range refs {
		want, known := g.digests[ref]
		if !known {
			g.digests[ref] = digest
			continue
		}
		if digest != want {
			diverged = fmt.Sprintf("%s: backend digest %.12s… != fleet %.12s…", ref, digest, want)
		}
	}
	b.divergent.Store(diverged != "")
	if diverged != "" {
		b.lastErr.Store("catalog divergence: " + diverged)
	}
}

// decodeTypedError reads a typed {"error":{...}} body, nil when the body is
// not one.
func decodeTypedError(r io.Reader) *apierr.Error {
	var body struct {
		Error apierr.Error `json:"error"`
	}
	if json.NewDecoder(io.LimitReader(r, 64<<10)).Decode(&body) != nil || body.Error.Code == "" {
		return nil
	}
	return &body.Error
}

func drainClose(body io.ReadCloser) {
	io.Copy(io.Discard, io.LimitReader(body, 1<<20))
	body.Close()
}

// --- gateway health surface ---

// BackendStatus is one backend's row of the gateway's GET /healthz body.
type BackendStatus struct {
	URL       string `json:"url"`
	Healthy   bool   `json:"healthy"`
	Draining  bool   `json:"draining,omitempty"`
	Divergent bool   `json:"divergent,omitempty"`
	Inflight  int64  `json:"inflight"`
	Relayed   int64  `json:"relayed"`
	Refused   int64  `json:"refused"`
	Lost      int64  `json:"lost"`
	LastErr   string `json:"lastErr,omitempty"`
}

// HealthResponse is the gateway's GET /healthz body: OK while at least one
// backend is routable.
type HealthResponse struct {
	OK            bool            `json:"ok"`
	Backends      []BackendStatus `json:"backends"`
	ShedNoBackend int64           `json:"shedNoBackend,omitempty"`
	// Failovers counts mid-stream failover hops: times a live stream was
	// transparently reopened on a successor backend.
	Failovers int64 `json:"failovers,omitempty"`
}

// Status snapshots the pool (the healthz body, also for tests/operators).
func (g *Gateway) Status() HealthResponse {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := HealthResponse{
		ShedNoBackend: g.shedNoBackend.Load(),
		Failovers:     g.failovers.Load(),
	}
	for _, m := range g.members {
		b := g.backends[m]
		st := BackendStatus{
			URL:       b.url,
			Healthy:   b.healthy.Load(),
			Draining:  b.draining.Load(),
			Divergent: b.divergent.Load(),
			Inflight:  b.inflight.Load(),
			Relayed:   b.relayed.Load(),
			Refused:   b.refused.Load(),
			Lost:      b.lost.Load(),
		}
		if s, _ := b.lastErr.Load().(string); s != "" {
			st.LastErr = s
		}
		if st.Healthy && !st.Draining && !st.Divergent {
			out.OK = true
		}
		out.Backends = append(out.Backends, st)
	}
	return out
}

func (g *Gateway) health(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	json.NewEncoder(w).Encode(g.Status())
}

// --- catalog fan-out ---

// UploadResponse is the gateway's POST /v1/models reply: the canonical
// digest (computed by the gateway itself from the uploaded bytes) and every
// backend's verified outcome.
type UploadResponse struct {
	// Ref is the fleet-wide reference when every backend assigned the same
	// version (the common case: catalogs in lockstep).
	Ref      string          `json:"ref,omitempty"`
	Digest   string          `json:"digest"`
	Backends []BackendUpload `json:"backends"`
}

// BackendUpload is one backend's upload outcome.
type BackendUpload struct {
	URL string `json:"url"`
	// Ref is the name@vN the backend assigned (or already held, when
	// Existing).
	Ref      string `json:"ref,omitempty"`
	Existing bool   `json:"existing,omitempty"`
}

// uploadModel fans a model upload out to every backend, verifying each
// returned manifest digest against the gateway's own computation over the
// uploaded bytes — a backend that reports a different digest for the bytes
// it just accepted is marked divergent on the spot.
func (g *Gateway) uploadModel(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		writeErr(w, apierr.New(apierr.CodeBadInput, "missing ?name= (the model name to version under)"))
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.maxUpload))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeErr(w, apierr.New(apierr.CodePayloadTooLarge, "model upload exceeds %d bytes", tooBig.Limit))
			return
		}
		writeErr(w, err)
		return
	}
	m, err := core.Decode(data)
	if err != nil {
		writeErr(w, apierr.New(apierr.CodeBadInput, "%v", err))
		return
	}
	// The canonical digest: what every backend must report back. (Version 1
	// is a placeholder; the digest covers only the model bytes.)
	man, err := catalog.NewManifest(name, 1, m, nil)
	if err != nil {
		writeErr(w, err)
		return
	}
	digest := man.Digest

	g.mu.RLock()
	bs := make([]*backend, 0, len(g.members))
	for _, mb := range g.members {
		bs = append(bs, g.backends[mb])
	}
	g.mu.RUnlock()

	// Sequential, in member order: deterministic version assignment and
	// divergence arbitration. Fan-out is an admin operation; latency is not
	// the constraint here, agreement is.
	resp := UploadResponse{Digest: digest}
	var created, existing int
	var failures []string
	for _, b := range bs {
		bman, ae, err := g.postModel(r.Context(), b, name, data)
		switch {
		case err != nil:
			g.noteBackendError(b, err)
			failures = append(failures, fmt.Sprintf("%s: %v", b.url, err))
		case ae != nil && ae.Code == apierr.CodeModelExists:
			// Already replicated (same digest): idempotent success.
			existing++
			resp.Backends = append(resp.Backends, BackendUpload{URL: b.url, Existing: true})
		case ae != nil:
			failures = append(failures, fmt.Sprintf("%s: %v", b.url, ae))
		case bman.Digest != digest:
			// The backend accepted the bytes but reports a different
			// digest: it is not serving what was uploaded. Refuse to route
			// there until a probe shows convergence.
			b.divergent.Store(true)
			b.lastErr.Store(fmt.Sprintf("upload digest mismatch on %s: got %.12s…, want %.12s…",
				bman.Ref(), bman.Digest, digest))
			failures = append(failures, fmt.Sprintf("%s: digest mismatch on %s", b.url, bman.Ref()))
		default:
			created++
			resp.Backends = append(resp.Backends, BackendUpload{URL: b.url, Ref: bman.Ref()})
			g.catMu.Lock()
			g.digests[bman.Ref()] = digest
			g.catMu.Unlock()
		}
	}
	switch {
	case len(failures) > 0:
		writeErr(w, apierr.New(apierr.CodeInternal,
			"gateway: model fan-out incomplete (%d/%d backends): %s; the health loop reconciles divergence",
			created+existing, len(bs), strings.Join(failures, "; ")))
		return
	case created == 0 && existing > 0:
		// Every backend already held these bytes: surface the same typed
		// conflict a single backend would.
		writeErr(w, apierr.New(apierr.CodeModelExists,
			"model %q with digest %.12s… already replicated on all %d backends", name, digest, len(bs)))
		return
	}
	// Fleet-wide ref only when every creating backend agreed on the version.
	ref := ""
	for _, bu := range resp.Backends {
		if bu.Ref == "" {
			continue
		}
		if ref == "" {
			ref = bu.Ref
		} else if ref != bu.Ref {
			ref = ""
			break
		}
	}
	resp.Ref = ref
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	json.NewEncoder(w).Encode(resp)
}

// postModel uploads the model bytes to one backend, returning the decoded
// manifest on success, the typed error on a typed refusal, or a transport
// error.
func (g *Gateway) postModel(ctx context.Context, b *backend, name string, data []byte) (catalog.Manifest, *apierr.Error, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		b.url+"/v1/models?name="+url.QueryEscape(name), bytes.NewReader(data))
	if err != nil {
		return catalog.Manifest{}, nil, err
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return catalog.Manifest{}, nil, err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusCreated {
		if ae := decodeTypedError(resp.Body); ae != nil {
			return catalog.Manifest{}, ae, nil
		}
		return catalog.Manifest{}, nil, fmt.Errorf("unexpected status %d from %s", resp.StatusCode, b.url)
	}
	var man catalog.Manifest
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&man); err != nil {
		return catalog.Manifest{}, nil, fmt.Errorf("decoding manifest from %s: %v", b.url, err)
	}
	return man, nil, nil
}

// deleteModel fans a version retirement out to every backend. Mixed
// outcomes converge ("already gone" counts as done); any hard failure is
// surfaced typed and the health loop reconciles.
func (g *Gateway) deleteModel(w http.ResponseWriter, r *http.Request) {
	ref := r.PathValue("ref")
	g.mu.RLock()
	bs := make([]*backend, 0, len(g.members))
	for _, m := range g.members {
		bs = append(bs, g.backends[m])
	}
	g.mu.RUnlock()

	var deleted, missing int
	var firstTyped *apierr.Error
	var failures []string
	for _, b := range bs {
		req, err := http.NewRequestWithContext(r.Context(), http.MethodDelete,
			b.url+"/v1/models/"+url.PathEscape(ref), nil)
		if err != nil {
			failures = append(failures, fmt.Sprintf("%s: %v", b.url, err))
			continue
		}
		resp, err := g.client.Do(req)
		if err != nil {
			g.noteBackendError(b, err)
			failures = append(failures, fmt.Sprintf("%s: %v", b.url, err))
			continue
		}
		switch {
		case resp.StatusCode == http.StatusOK:
			deleted++
		default:
			ae := decodeTypedError(resp.Body)
			switch {
			case ae != nil && ae.Code == apierr.CodeModelNotFound:
				missing++
				if firstTyped == nil {
					firstTyped = ae
				}
			case ae != nil:
				if firstTyped == nil {
					firstTyped = ae
				}
				failures = append(failures, fmt.Sprintf("%s: %v", b.url, ae))
			default:
				failures = append(failures, fmt.Sprintf("%s: status %d", b.url, resp.StatusCode))
			}
		}
		drainClose(resp.Body)
	}
	switch {
	case len(failures) > 0:
		writeErr(w, apierr.New(apierr.CodeInternal,
			"gateway: delete fan-out incomplete (%d/%d backends): %s",
			deleted+missing, len(bs), strings.Join(failures, "; ")))
		return
	case deleted == 0:
		// Nowhere to delete from: relay the backends' own typed answer
		// (model_not_found, or bad_input for a malformed ref).
		if firstTyped != nil {
			writeErr(w, firstTyped)
		} else {
			writeErr(w, apierr.New(apierr.CodeModelNotFound, "no model %q on any backend", ref))
		}
		return
	}
	g.catMu.Lock()
	delete(g.digests, ref)
	g.catMu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	json.NewEncoder(w).Encode(map[string]string{"deleted": ref})
}

// setDefault fans the default-model pointer out to every backend.
func (g *Gateway) setDefault(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 4096))
	if err != nil {
		writeErr(w, apierr.New(apierr.CodeBadInput, "bad request body: %v", err))
		return
	}
	g.mu.RLock()
	bs := make([]*backend, 0, len(g.members))
	for _, m := range g.members {
		bs = append(bs, g.backends[m])
	}
	g.mu.RUnlock()

	var okCount int
	var firstTyped *apierr.Error
	var failures []string
	for _, b := range bs {
		req, err := http.NewRequestWithContext(r.Context(), http.MethodPut,
			b.url+"/v1/default", bytes.NewReader(body))
		if err != nil {
			failures = append(failures, fmt.Sprintf("%s: %v", b.url, err))
			continue
		}
		resp, err := g.client.Do(req)
		if err != nil {
			g.noteBackendError(b, err)
			failures = append(failures, fmt.Sprintf("%s: %v", b.url, err))
			continue
		}
		if resp.StatusCode == http.StatusOK {
			okCount++
		} else if ae := decodeTypedError(resp.Body); ae != nil {
			if firstTyped == nil {
				firstTyped = ae
			}
		} else {
			failures = append(failures, fmt.Sprintf("%s: status %d", b.url, resp.StatusCode))
		}
		drainClose(resp.Body)
	}
	switch {
	case len(failures) > 0:
		writeErr(w, apierr.New(apierr.CodeInternal,
			"gateway: default fan-out incomplete (%d/%d backends): %s",
			okCount, len(bs), strings.Join(failures, "; ")))
	case okCount == 0 && firstTyped != nil:
		writeErr(w, firstTyped) // e.g. model_not_found everywhere
	default:
		var req struct {
			Model string `json:"model"`
		}
		json.Unmarshal(body, &req)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		json.NewEncoder(w).Encode(map[string]string{"default": req.Model})
	}
}
