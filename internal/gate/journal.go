package gate

// The per-stream replay journal behind transparent mid-stream failover.
//
// A journal tees the client's uplink: every parsed unit (one binary frame or
// one NDJSON chunk line) is copied verbatim into a recycled byte arena,
// tagged with its sample count and absolute base index. The relay's sender
// goroutine follows a cursor over the entries and writes them to the current
// backend attempt; when that backend dies, resetForAttempt rewinds the
// cursor to the oldest retained entry and the next attempt replays from
// there, opening with the entry's base as the resume handshake.
//
// Retention is anchored to delivered beats, not to uplink progress: the
// downlink acks the watermark as it forwards beat lines, and an entry is
// evicted only once the sender has consumed it AND the entries that remain
// still reach back at least `window` samples behind that watermark — window
// being the deterministic-resync bound (pipeline.ResyncWarmup), the replay
// depth that makes every beat the client has NOT yet seen regenerate
// bit-identically on the successor. Anchoring to the watermark rather than
// to journaled totals matters when the backend races ahead of its downlink:
// beats it emitted but never delivered must still be reproducible, so the
// samples that produced them must still be in the journal. Entries never
// wrap the arena (placement skips to offset zero instead), so every entry
// is one contiguous span.
//
// Two different things can hold an eviction up, and they get opposite
// treatment. When the sender lags (a slow backend) appends block on the
// condition variable until the cursor advances — the same backpressure the
// un-journaled relay got from the HTTP connection's flow control. When the
// ack watermark lags (beats simply haven't arrived yet) appends must NOT
// block: the backend needs future samples to produce the very beats that
// would advance the watermark, so blocking would deadlock the stream.
// Those appends grow the arena instead — bounded in practice by beat
// spacing plus pipeline delay, and hard-capped at maxJournalArena, past
// which the journal poisons itself: replay capability is surrendered, the
// stream degrades to the plain relay contract, and memory stays bounded.

import "sync"

// maxJournalArena caps the replay arena. A stream whose retention needs
// more than this (pathologically, a signal with no beats to anchor
// eviction) trades failover for bounded memory via poison.
const maxJournalArena = 32 << 20

// jentry is one journaled uplink unit: a contiguous byte span in the arena,
// its sample count, and the absolute index of its first sample.
type jentry struct {
	off, n  int
	samples int
	base    int64
}

type journal struct {
	mu   sync.Mutex
	cond sync.Cond

	arena []byte
	wOff  int // next arena write offset

	ents    []jentry // entry ring
	head    int      // ring index of the oldest live entry
	count   int
	headSeq int64 // sequence number of ents[head]

	total  int64 // samples journaled so far (the next entry's base)
	acked  int64 // samples delivered: last forwarded beat's index + 1
	window int   // minimum samples retained behind the ack watermark

	cursor int64 // seq of the next entry the current attempt sends
	gen    int   // attempt generation; stale senders see a mismatch and exit

	done     bool // uplink ended cleanly: drain, then end the body
	closed   bool // relay torn down: appends refused, senders released
	poisoned bool // uplink unparseable: sample accounting gone, failover off
}

func newJournal(window int) *journal {
	j := &journal{window: window}
	j.cond.L = &j.mu
	return j
}

// append journals one uplink unit (raw bytes, verbatim) carrying `samples`
// samples. It blocks when the only space is still unsent (backpressure) and
// returns false once the journal is closed. Steady-state appends recycle
// evicted arena space and allocate nothing; growth lives in the unannotated
// helpers.
//
//rpbeat:allocfree
func (j *journal) append(raw []byte, samples int) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	for {
		if j.closed {
			return false
		}
		if j.count == len(j.ents) {
			if j.evictLocked() {
				continue
			}
			if j.cursorBlocked() {
				j.cond.Wait()
				continue
			}
			j.growEnts()
			continue
		}
		off, ok := j.placeLocked(len(raw))
		if !ok {
			if j.evictLocked() {
				continue
			}
			if j.cursorBlocked() {
				j.cond.Wait()
				continue
			}
			if len(j.arena) >= maxJournalArena {
				// Retention outgrew its budget: give up replay
				// capability rather than memory, then recycle.
				j.poisonLocked()
				continue
			}
			j.growArena(len(raw))
			continue
		}
		copy(j.arena[off:], raw)
		j.ents[(j.head+j.count)%len(j.ents)] = jentry{
			off: off, n: len(raw), samples: samples, base: j.total,
		}
		j.count++
		j.wOff = off + len(raw)
		j.total += int64(samples)
		j.cond.Broadcast()
		return true
	}
}

// evictLocked drops the oldest entry when the current attempt has sent it
// and the remaining entries still reach window samples behind the ack
// watermark — so every undelivered beat stays regenerable. A poisoned
// journal retains nothing beyond what the sender still needs.
func (j *journal) evictLocked() bool {
	if j.count < 2 || j.cursor <= j.headSeq {
		return false
	}
	if !j.poisoned {
		second := j.ents[(j.head+1)%len(j.ents)]
		if j.acked-second.base < int64(j.window) {
			return false
		}
	}
	j.head = (j.head + 1) % len(j.ents)
	j.count--
	j.headSeq++
	return true
}

// cursorBlocked reports that eviction is held up only by the sender (the
// head entry is still unsent) — the append should wait, not grow. When the
// blocker is the ack watermark instead, waiting would deadlock: the backend
// needs future samples to emit the beats that advance it.
func (j *journal) cursorBlocked() bool {
	if j.count < 2 || j.cursor > j.headSeq {
		return false
	}
	if j.poisoned {
		return true
	}
	second := j.ents[(j.head+1)%len(j.ents)]
	return j.acked-second.base >= int64(j.window)
}

// placeLocked finds a contiguous arena span of n bytes that overlaps no live
// entry. Live bytes occupy the circular region [headOff, wOff); placement
// tries the current write offset first and skips to zero rather than
// wrapping an entry across the arena end.
func (j *journal) placeLocked(n int) (int, bool) {
	if n > len(j.arena) {
		return 0, false
	}
	if j.count == 0 {
		return 0, true
	}
	headOff := j.ents[j.head].off
	if j.wOff == headOff {
		return 0, false // the live region covers the whole arena
	}
	if j.wOff > headOff {
		if n <= len(j.arena)-j.wOff {
			return j.wOff, true
		}
		if n <= headOff {
			return 0, true
		}
		return 0, false
	}
	if n <= headOff-j.wOff {
		return j.wOff, true
	}
	return 0, false
}

// growArena reallocates the arena (compacting live entries to the front) so
// an n-byte entry fits alongside everything retention still needs.
func (j *journal) growArena(n int) {
	need := n
	for i := 0; i < j.count; i++ {
		need += j.ents[(j.head+i)%len(j.ents)].n
	}
	size := 2 * len(j.arena)
	if size < 2*need {
		size = 2 * need
	}
	if size < 16<<10 {
		size = 16 << 10
	}
	next := make([]byte, size)
	w := 0
	for i := 0; i < j.count; i++ {
		e := &j.ents[(j.head+i)%len(j.ents)]
		copy(next[w:], j.arena[e.off:e.off+e.n])
		e.off = w
		w += e.n
	}
	j.arena = next
	j.wOff = w
}

func (j *journal) growEnts() {
	size := 2 * len(j.ents)
	if size < 64 {
		size = 64
	}
	next := make([]jentry, size)
	for i := 0; i < j.count; i++ {
		next[i] = j.ents[(j.head+i)%len(j.ents)]
	}
	j.ents = next
	j.head = 0
}

// next blocks for the attempt's next journal entry and copies it into buf
// (grown as needed; pass the previous return back in to stay allocation-free
// once warm). ok=false ends the attempt: superseded by a failover, torn
// down, or drained after uplink EOF — uplinkDone distinguishes the last.
// Copying under the lock keeps every arena access serialized; a stale
// sender's buffer can never race recycled arena space.
func (j *journal) next(gen int, buf []byte) ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for {
		if j.closed || gen != j.gen {
			return buf, false
		}
		if j.cursor < j.headSeq+int64(j.count) {
			e := j.ents[(j.head+int(j.cursor-j.headSeq))%len(j.ents)]
			if cap(buf) < e.n {
				buf = make([]byte, e.n)
			}
			buf = buf[:e.n]
			copy(buf, j.arena[e.off:e.off+e.n])
			j.cursor++
			j.cond.Broadcast()
			return buf, true
		}
		if j.done {
			return buf, false
		}
		j.cond.Wait()
	}
}

// uplinkDone reports whether an attempt's sender stopped because the client
// finished its upload and every journaled byte went out — the clean end that
// should close the backend request body with EOF so the pipeline flushes.
func (j *journal) uplinkDone(gen int) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.done && !j.closed && gen == j.gen && j.cursor >= j.headSeq+int64(j.count)
}

// resetForAttempt rewinds the replay cursor for a new relay attempt and
// returns the attempt's generation plus the absolute sample index its bytes
// start at — the X-Rpbeat-Resume-From value. The first attempt resolves to
// base 0 (nothing consumed yet); later ones to the oldest retained entry,
// which retention guarantees sits at least `window` samples behind the
// failure point once the stream is past its own start.
func (j *journal) resetForAttempt() (gen int, base int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.gen++
	j.cursor = j.headSeq
	base = j.total
	if j.count > 0 {
		base = j.ents[j.head].base
	}
	j.cond.Broadcast()
	return j.gen, base
}

// finish marks the uplink cleanly ended: no more appends are coming, senders
// drain what remains and close their bodies with EOF.
func (j *journal) finish() {
	j.mu.Lock()
	j.done = true
	j.cond.Broadcast()
	j.mu.Unlock()
}

// close tears the journal down: appends return false, senders exit. Safe to
// call more than once.
func (j *journal) close() {
	j.mu.Lock()
	j.closed = true
	j.cond.Broadcast()
	j.mu.Unlock()
}

// ack records delivery progress: the downlink forwarded a beat whose sample
// index is samples-1, so replay never needs to reach further back than
// window samples before it. Monotone; stale attempts can only re-ack lower.
func (j *journal) ack(samples int64) {
	j.mu.Lock()
	if samples > j.acked {
		j.acked = samples
		j.cond.Broadcast()
	}
	j.mu.Unlock()
}

// poison turns replay off for good: the uplink stopped being parseable (or
// retention blew its budget), so failover is no longer possible. Retention
// ends — consumed entries recycle immediately and a poisoned stream cannot
// grow the arena without bound.
func (j *journal) poison() {
	j.mu.Lock()
	j.poisonLocked()
	j.mu.Unlock()
}

func (j *journal) poisonLocked() {
	j.poisoned = true
	j.cond.Broadcast()
}

// exact reports that every journaled byte carries trustworthy sample
// accounting — the precondition for failover.
func (j *journal) exact() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return !j.poisoned
}

// samples returns the total samples journaled so far.
func (j *journal) samples() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.total
}
