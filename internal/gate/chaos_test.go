package gate

// Chaos suite for the gateway tier: backends die mid-stream, the pool
// membership changes under live traffic, and the contract must hold. With
// failover enabled (the default) a backend death is invisible — victim
// streams continue on a successor with no error line, no lost or duplicated
// beat, and a done line accounting for the whole record. With FailoverWindow
// < 0 the legacy contract applies: every affected stream ends with a typed
// NDJSON error line (never a hang, never a torn line). Either way,
// unaffected streams are beat-for-beat identical to a direct-to-backend run
// and a full-stack Close leaks no goroutines. Run under -race.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"testing"

	"rpbeat/internal/apierr"
	"rpbeat/internal/serve"
	"rpbeat/internal/wire"
)

// keysOwnedBy finds n distinct stream ids the gateway currently routes to
// the given backend URL.
func keysOwnedBy(t *testing.T, s *gateStack, url string, n int) []string {
	t.Helper()
	var out []string
	for i := 0; len(out) < n; i++ {
		if i > 100000 {
			t.Fatalf("could not find %d keys for %s", n, url)
		}
		k := fmt.Sprintf("chaos-%d", i)
		if owner, ok := s.gw.BackendFor(k); ok && owner == url {
			out = append(out, k)
		}
	}
	return out
}

// liveStream is one interactive /v1/stream request held open mid-stream: the
// request body is a pipe, so the server sits between chunks until fed or
// abandoned.
type liveStream struct {
	pw    *io.PipeWriter
	resp  *http.Response
	br    *bufio.Reader
	first []byte // the first response line, consumed by openStream
}

// openStream starts a stream for id, writes one binary frame and blocks
// until the first beat line arrives — proof the relay is live end to end.
func openStream(t *testing.T, client *http.Client, base, id string, frame []byte) *liveStream {
	t.Helper()
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, base+"/v1/stream", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", wire.ContentTypeSamples)
	req.Header.Set("X-Stream-Id", id)
	go pw.Write(frame)
	resp, err := client.Do(req)
	if err != nil {
		t.Fatalf("stream %s: %v", id, err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("stream %s: status %d: %s", id, resp.StatusCode, body)
	}
	ls := &liveStream{pw: pw, resp: resp, br: bufio.NewReader(resp.Body)}
	line, err := ls.br.ReadBytes('\n')
	if err != nil {
		t.Fatalf("stream %s: first line: %v", id, err)
	}
	if !json.Valid(line) {
		t.Fatalf("stream %s: first line not JSON: %q", id, line)
	}
	ls.first = line
	return ls
}

// streamLine is the decoded shape of one NDJSON downlink line — beat fields
// for beat lines, done fields for the terminal line.
type streamLine struct {
	Sample     int64  `json:"sample"`
	Class      string `json:"class"`
	DetectedAt int64  `json:"detectedAt"`
	Done       bool   `json:"done"`
	Beats      int    `json:"beats"`
	Samples    int    `json:"samples"`
}

// drainLines reads the stream to EOF and returns every remaining line.
// Errors from the read are fine (the connection may die under chaos); a
// partial trailing line without '\n' is returned too so callers can assert
// it never happens.
func drainLines(ls *liveStream) [][]byte {
	var lines [][]byte
	for {
		line, err := ls.br.ReadBytes('\n')
		if len(line) > 0 {
			lines = append(lines, line)
		}
		if err != nil {
			return lines
		}
	}
}

// errLine decodes an NDJSON error line, or nil if the line is not one.
func errLine(line []byte) *apierr.Error {
	var er struct {
		Error *apierr.Error `json:"error"`
	}
	if json.Unmarshal(line, &er) != nil {
		return nil
	}
	return er.Error
}

// streamDirect runs a whole binary-framed record against one backend and
// returns the full NDJSON response body — the reference a relayed run must
// match byte for byte.
func streamDirect(t *testing.T, b *backendStack, body []byte) []byte {
	t.Helper()
	resp, err := b.ts.Client().Post(b.ts.URL+"/v1/stream", wire.ContentTypeSamples, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("direct stream status %d", resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestChaosBackendKillMidStream kills a backend while streams are mid-flight
// through the gateway. With failover enabled (the default) the kill must be
// invisible to the client: victim streams continue on a successor backend
// with no error line, strictly increasing beat samples (no loss, no
// duplication), and a final done line accounting for the whole record.
// Survivor streams on other backends are byte-identical to direct runs.
func TestChaosBackendKillMidStream(t *testing.T) {
	baseline := runtime.NumGoroutine()
	s := newGateStack(t, 3, serve.HandlerConfig{}, Config{FailAfter: 1})
	s.gw.CheckNow(context.Background())

	lead1, lead2 := testLead(10, 21), testLead(10, 22)
	frame1, frame2 := mustFrame(t, lead1), mustFrame(t, lead2)
	victim := s.backends[2]

	// Three victim streams held mid-stream on the doomed backend.
	victimIDs := keysOwnedBy(t, s, victim.ts.URL, 3)
	var victims []*liveStream
	for _, id := range victimIDs {
		victims = append(victims, openStream(t, s.ts.Client(), s.ts.URL, id, frame1))
	}

	// Survivor streams mid-flight on the other two backends while the kill
	// happens.
	survivorIDs := append(keysOwnedBy(t, s, s.backends[0].ts.URL, 2),
		keysOwnedBy(t, s, s.backends[1].ts.URL, 2)...)
	var survivors []*liveStream
	for _, id := range survivorIDs {
		survivors = append(survivors, openStream(t, s.ts.Client(), s.ts.URL, id, frame1))
	}

	// Kill the backend under all three victim streams.
	victim.ts.CloseClientConnections()
	victim.Close()

	// The kill must be invisible: the client finishes its record as if
	// nothing happened.
	for i, ls := range victims {
		if _, err := ls.pw.Write(frame2); err != nil {
			t.Fatalf("victim %d: uplink write after kill: %v", i, err)
		}
		ls.pw.Close()
	}

	for i, ls := range victims {
		lines := append([][]byte{ls.first}, drainLines(ls)...)
		prev, beats := int64(-1), 0
		var done *streamLine
		for _, line := range lines {
			if !bytes.HasSuffix(line, []byte("\n")) {
				t.Fatalf("victim %d: torn line %q", i, line)
			}
			if e := errLine(line); e != nil {
				t.Fatalf("victim %d: error line leaked through failover: %q", i, line)
			}
			var sl streamLine
			if err := json.Unmarshal(line, &sl); err != nil {
				t.Fatalf("victim %d: non-JSON line %q: %v", i, line, err)
			}
			if sl.Done {
				done = &sl
				continue
			}
			if done != nil {
				t.Fatalf("victim %d: line after done: %q", i, line)
			}
			beats++
			if sl.Sample <= prev {
				t.Fatalf("victim %d: beat sample %d after %d — beat lost or duplicated across failover",
					i, sl.Sample, prev)
			}
			prev = sl.Sample
		}
		if done == nil {
			t.Fatalf("victim %d: stream ended without a done line", i)
		}
		if beats == 0 {
			t.Fatalf("victim %d: stream delivered no beats at all", i)
		}
		if done.Beats != beats {
			t.Fatalf("victim %d: done reports %d beats, stream delivered %d", i, done.Beats, beats)
		}
		if want := len(lead1) + len(lead2); done.Samples != want {
			t.Fatalf("victim %d: done reports %d samples, record has %d", i, done.Samples, want)
		}
		ls.resp.Body.Close()
	}

	if got := s.gw.Status().Failovers; got < int64(len(victims)) {
		t.Fatalf("failovers counter is %d, want >= %d (one per victim stream)", got, len(victims))
	}

	// The dead backend's keys rehash to survivors (FailAfter=1 demoted it on
	// the first lost relay).
	for _, id := range victimIDs[:1] {
		if owner, ok := s.gw.BackendFor(id); !ok || owner == victim.ts.URL {
			t.Fatalf("key %s still routed to dead backend (owner %q ok=%v)", id, owner, ok)
		}
	}

	// Survivors finish their streams undisturbed and match a direct run
	// byte for byte.
	var wantBody []byte
	wantBody = append(wantBody, frame1...)
	refDirect := streamDirect(t, s.backends[0], wantBody)
	for i, ls := range survivors {
		ls.pw.Close() // end of record
		rest, err := io.ReadAll(ls.br)
		if err != nil {
			t.Fatalf("survivor %d: read: %v", i, err)
		}
		ls.resp.Body.Close()
		// Reassemble the full response: the first line openStream consumed is
		// deterministic, so compare against the direct reference suffix.
		if !bytes.HasSuffix(refDirect, rest) {
			t.Fatalf("survivor %d: relayed tail diverges from direct run\nrelayed: %q\ndirect:  %q",
				i, rest, refDirect)
		}
		if len(rest) >= len(refDirect) {
			t.Fatalf("survivor %d: tail (%d bytes) should be shorter than full direct body (%d)",
				i, len(rest), len(refDirect))
		}
	}

	// Full-stack teardown leaks nothing.
	s.Close()
	s.ts.Client().CloseIdleConnections()
	for _, b := range s.backends {
		b.ts.Client().CloseIdleConnections()
	}
	waitGoroutines(t, baseline+2)
}

// TestChaosBackendKillFailoverDisabled pins the legacy contract: with
// FailoverWindow < 0 the journal layer is bypassed entirely and a backend
// death surfaces as the trailing typed retryable error line of the plain
// relay path — every received line parses, nothing hangs, nothing is torn.
func TestChaosBackendKillFailoverDisabled(t *testing.T) {
	s := newGateStack(t, 3, serve.HandlerConfig{}, Config{FailAfter: 1, FailoverWindow: -1})
	defer s.Close()
	s.gw.CheckNow(context.Background())

	frame := mustFrame(t, testLead(10, 21))
	victim := s.backends[2]

	var victims []*liveStream
	for _, id := range keysOwnedBy(t, s, victim.ts.URL, 2) {
		victims = append(victims, openStream(t, s.ts.Client(), s.ts.URL, id, frame))
	}

	victim.ts.CloseClientConnections()
	victim.Close()

	for i, ls := range victims {
		lines := drainLines(ls)
		if len(lines) == 0 {
			t.Fatalf("victim %d: stream ended with no trailing line at all", i)
		}
		for _, line := range lines {
			if !bytes.HasSuffix(line, []byte("\n")) {
				t.Fatalf("victim %d: torn line %q", i, line)
			}
			if !json.Valid(line) {
				t.Fatalf("victim %d: non-JSON line %q", i, line)
			}
		}
		last := errLine(lines[len(lines)-1])
		if last == nil {
			t.Fatalf("victim %d: final line is not a typed error: %q", i, lines[len(lines)-1])
		}
		if last.Code != apierr.CodeServerOverloaded && last.Code != apierr.CodeShuttingDown {
			t.Fatalf("victim %d: error code %q, want server_overloaded or shutting_down", i, last.Code)
		}
		if !last.Retryable() {
			t.Fatalf("victim %d: mid-stream loss must be retryable, got %q", i, last.Code)
		}
		if s.gw.Status().Failovers != 0 {
			t.Fatalf("failovers counted with failover disabled")
		}
		ls.resp.Body.Close()
		ls.pw.Close()
	}
}

// TestChaosMembershipRehash is the membership-change conformance test:
// removing a backend moves exactly its keys (counted), an in-flight stream
// pinned to the removed backend drains to completion beat-exact, and adding
// a backend moves keys only onto the newcomer.
func TestChaosMembershipRehash(t *testing.T) {
	s := newGateStack(t, 3, serve.HandlerConfig{}, Config{})
	defer s.Close()
	s.gw.CheckNow(context.Background())

	keys := testKeys(1000)
	ownerOf := func() map[string]string {
		out := make(map[string]string, len(keys))
		for _, k := range keys {
			owner, ok := s.gw.BackendFor(k)
			if !ok {
				t.Fatalf("no backend for %s", k)
			}
			out[k] = owner
		}
		return out
	}
	before := ownerOf()
	removed := s.backends[2].ts.URL

	// Pin a live stream to the backend about to leave: write the first of
	// two frames, hold mid-stream across the membership change.
	frame1 := mustFrame(t, testLead(6, 31))
	frame2 := mustFrame(t, testLead(6, 32))
	pinnedID := keysOwnedBy(t, s, removed, 1)[0]
	ls := openStream(t, s.ts.Client(), s.ts.URL, pinnedID, frame1)

	if err := s.gw.Remove(removed); err != nil {
		t.Fatal(err)
	}

	// Conformance: exactly the removed backend's keys move, nobody else's.
	after := ownerOf()
	moved, wasRemoved := 0, 0
	for _, k := range keys {
		if before[k] == removed {
			wasRemoved++
			if after[k] == removed {
				t.Fatalf("key %s still owned by removed backend", k)
			}
			continue
		}
		if after[k] != before[k] {
			moved++
			t.Errorf("key %s moved %s -> %s though its backend survived", k, before[k], after[k])
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys moved off surviving backends, want 0", moved)
	}
	if fair := len(keys) / 3; wasRemoved < fair/2 || wasRemoved > fair*2 {
		t.Errorf("removed backend owned %d keys, want ~%d", wasRemoved, fair)
	}

	// The pinned stream drains beat-exact through the removal: the relay
	// holds the *backend, not the ring slot.
	if _, err := ls.pw.Write(frame2); err != nil {
		t.Fatalf("pinned stream write after removal: %v", err)
	}
	ls.pw.Close()
	rest, err := io.ReadAll(ls.br)
	if err != nil {
		t.Fatalf("pinned stream drain: %v", err)
	}
	ls.resp.Body.Close()
	ref := streamDirect(t, s.backends[2], append(append([]byte{}, frame1...), frame2...))
	if !bytes.HasSuffix(ref, rest) || len(rest) >= len(ref) {
		t.Fatalf("drained stream diverges from direct run\nrelayed tail: %q\ndirect:       %q", rest, ref)
	}
	for _, line := range bytes.SplitAfter(rest, []byte("\n")) {
		if e := errLine(line); e != nil {
			t.Fatalf("drained stream carries an error line: %q", line)
		}
	}

	// A fresh request for the pinned id now lands on a survivor.
	status, _, hdr := postBody(t, s.ts.Client(), http.MethodPost,
		s.ts.URL+"/v1/classify", wire.ContentTypeSamples,
		map[string]string{"X-Stream-Id": pinnedID}, mustFrame(t, testLead(2, 33)))
	if status != http.StatusOK {
		t.Fatalf("post-removal classify status %d", status)
	}
	if got := hdr.Get("X-Rpgate-Backend"); got == removed || got == "" {
		t.Fatalf("post-removal backend %q, want a survivor", got)
	}

	// Adding a backend moves keys only onto it.
	fresh := newBackendStack(t, "b4", serve.HandlerConfig{})
	defer fresh.Close()
	if err := s.gw.Add(fresh.ts.URL); err != nil {
		t.Fatal(err)
	}
	s.gw.CheckNow(context.Background())
	preAdd, postAdd := after, ownerOf()
	gained := 0
	for _, k := range keys {
		if postAdd[k] == preAdd[k] {
			continue
		}
		if postAdd[k] != fresh.ts.URL {
			t.Fatalf("key %s moved %s -> %s on add; only the new backend may gain keys",
				k, preAdd[k], postAdd[k])
		}
		gained++
	}
	if fair := len(keys) / 3; gained < fair/3 || gained > fair*2 {
		t.Errorf("addition moved %d keys onto the newcomer, want roughly %d", gained, fair)
	}
}
