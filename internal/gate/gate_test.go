package gate

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"rpbeat/internal/apierr"
	"rpbeat/internal/catalog"
	"rpbeat/internal/core"
	"rpbeat/internal/ecgsyn"
	"rpbeat/internal/nfc"
	"rpbeat/internal/pipeline"
	"rpbeat/internal/rng"
	"rpbeat/internal/rp"
	"rpbeat/internal/serve"
	"rpbeat/internal/testutil"
	"rpbeat/internal/wire"
)

// testModel fabricates a structurally valid model without the GA (the
// rpbench idiom): beat detection is model-independent and classification is
// deterministic for fixed bytes, which is all relay identity tests need.
// A fixed seed makes every backend's copy byte-identical (same digest).
func testModel(seed uint64) *core.Model {
	r := rng.New(seed)
	mf := nfc.NewParams(8)
	for i := range mf.C {
		mf.C[i] = float64(r.Intn(4000) - 2000)
		mf.Sigma[i] = 200 + float64(r.Intn(800))
	}
	return &core.Model{
		K: 8, D: 50, Downsample: 4,
		P:  rp.NewRandom(r, 8, 50),
		MF: mf, AlphaTrain: 0.1, MinARR: 0.97,
	}
}

// modelBytes is the canonical binary codec form of testModel(seed).
func modelBytes(t *testing.T, seed uint64) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := testModel(seed).WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// testLead synthesizes one deterministic ECG lead.
func testLead(seconds float64, seed uint64) []int32 {
	return ecgsyn.Synthesize(ecgsyn.RecordSpec{
		Name: "gate", Seconds: seconds, Seed: seed, PVCRate: 0.1,
	}).Leads[0]
}

// backendStack is one live rpserve backend for gateway tests.
type backendStack struct {
	instance string
	eng      *pipeline.Engine
	ts       *httptest.Server
	closed   bool
}

func (b *backendStack) Close() {
	if b.closed {
		return
	}
	b.closed = true
	b.ts.Close()
	b.eng.Close()
}

// newBackendStack boots one backend serving testModel(1) as "m" (so every
// backend in a pool holds identical bytes — one fleet digest).
func newBackendStack(t *testing.T, instance string, cfg serve.HandlerConfig) *backendStack {
	t.Helper()
	cat := catalog.New()
	if _, err := cat.Put("m", testModel(1), nil); err != nil {
		t.Fatal(err)
	}
	engMax := 0
	if cfg.MaxStreams > 0 {
		engMax = cfg.MaxStreams + 8
	}
	eng := pipeline.NewEngine(cat, pipeline.EngineConfig{Workers: 2, MaxStreams: engMax})
	cfg.Instance = instance
	ts := httptest.NewServer(serve.NewHandler(eng, cfg))
	return &backendStack{instance: instance, eng: eng, ts: ts}
}

// gateStack is a full gateway-over-backends fixture. Health probing is
// manual (CheckNow) so tests are deterministic.
type gateStack struct {
	backends []*backendStack
	gw       *Gateway
	ts       *httptest.Server
}

func (s *gateStack) Close() {
	s.ts.Close() // first: waits for in-flight gateway handlers
	s.gw.Close()
	for _, b := range s.backends {
		b.Close()
	}
}

func (s *gateStack) urls() []string {
	out := make([]string, len(s.backends))
	for i, b := range s.backends {
		out[i] = b.ts.URL
	}
	return out
}

func newGateStack(t *testing.T, n int, cfg serve.HandlerConfig, gcfg Config) *gateStack {
	t.Helper()
	s := &gateStack{}
	for i := 0; i < n; i++ {
		s.backends = append(s.backends, newBackendStack(t, fmt.Sprintf("b%d", i+1), cfg))
	}
	gcfg.Backends = s.urls()
	if gcfg.HealthInterval == 0 {
		gcfg.HealthInterval = -1 // manual probing unless a test opts in
	}
	gw, err := New(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	s.gw = gw
	s.ts = httptest.NewServer(gw.Handler())
	return s
}

// backendByURL maps a gateway-reported backend URL back to its stack.
func (s *gateStack) backendByURL(t *testing.T, url string) *backendStack {
	t.Helper()
	for _, b := range s.backends {
		if b.ts.URL == url {
			return b
		}
	}
	t.Fatalf("unknown backend URL %s", url)
	return nil
}

// waitGoroutines polls until the goroutine count settles at or below want.
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= want {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines stuck at %d, want <= %d\n%s",
				runtime.NumGoroutine(), want, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// postBody does one request and returns status, body and headers.
func postBody(t *testing.T, client *http.Client, method, url, contentType string, hdr map[string]string, body []byte) (int, []byte, http.Header) {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data, resp.Header
}

// wantTyped asserts a typed error body with the given status and code, and
// the Retry-After header exactly when the code is retryable.
func wantTyped(t *testing.T, status int, body []byte, hdr http.Header, wantStatus int, code apierr.Code) {
	t.Helper()
	if status != wantStatus {
		t.Fatalf("status %d, want %d (body %s)", status, wantStatus, body)
	}
	var er struct {
		Error apierr.Error `json:"error"`
	}
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatalf("body %q is not a typed error: %v", body, err)
	}
	if er.Error.Code != code {
		t.Fatalf("code %q, want %q (message %q)", er.Error.Code, code, er.Error.Message)
	}
	if wantRA := er.Error.Retryable(); (hdr.Get("Retry-After") != "") != wantRA {
		t.Fatalf("Retry-After presence %q, want set=%v for code %s",
			hdr.Get("Retry-After"), wantRA, code)
	}
}

// --- routing, affinity, health ---

func TestGatewayAffinityStable(t *testing.T) {
	s := newGateStack(t, 3, serve.HandlerConfig{}, Config{})
	defer s.Close()

	lead := testLead(4, 7)
	frames, err := wire.AppendFrame(nil, lead)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]string{} // stream id -> backend URL observed
	perBackend := map[string]int{}
	for i := 0; i < 12; i++ {
		id := fmt.Sprintf("affinity-%d", i)
		want, ok := s.gw.BackendFor(id)
		if !ok {
			t.Fatal("no routable backend")
		}
		// Two runs of the same stream must land on the same backend.
		for run := 0; run < 2; run++ {
			status, _, hdr := postBody(t, s.ts.Client(), http.MethodPost,
				s.ts.URL+"/v1/stream", wire.ContentTypeSamples,
				map[string]string{"X-Stream-Id": id}, frames)
			if status != http.StatusOK {
				t.Fatalf("stream %s run %d: status %d", id, run, status)
			}
			got := hdr.Get("X-Rpgate-Backend")
			if got != want {
				t.Fatalf("stream %s run %d: relayed to %s, BackendFor says %s", id, run, got, want)
			}
			if prev, ok := seen[id]; ok && prev != got {
				t.Fatalf("stream %s moved %s -> %s with stable membership", id, prev, got)
			}
			seen[id] = got
			// The backend's own identity header must survive the relay.
			if inst := hdr.Get("X-Rpbeat-Instance"); inst != s.backendByURL(t, got).instance {
				t.Fatalf("stream %s: instance header %q from backend %s", id, inst, got)
			}
		}
		perBackend[seen[id]]++
	}
	if len(perBackend) < 2 {
		t.Errorf("12 streams all landed on one backend: %v (ring imbalance?)", perBackend)
	}
}

func TestGatewayHealthz(t *testing.T) {
	s := newGateStack(t, 2, serve.HandlerConfig{}, Config{})
	defer s.Close()
	s.gw.CheckNow(context.Background())

	status, body, _ := postBody(t, s.ts.Client(), http.MethodGet, s.ts.URL+"/healthz", "", nil, nil)
	if status != http.StatusOK {
		t.Fatalf("healthz status %d", status)
	}
	var hr HealthResponse
	if err := json.Unmarshal(body, &hr); err != nil {
		t.Fatal(err)
	}
	if !hr.OK || len(hr.Backends) != 2 {
		t.Fatalf("healthz %+v, want ok with 2 backends", hr)
	}
	for _, b := range hr.Backends {
		if !b.Healthy || b.Draining || b.Divergent {
			t.Fatalf("backend %+v, want healthy after CheckNow", b)
		}
	}
	// A wrong verb on /healthz relays to a backend and comes back as the
	// backend's typed method_not_allowed.
	status, body, hdr := postBody(t, s.ts.Client(), http.MethodDelete, s.ts.URL+"/healthz", "", nil, nil)
	wantTyped(t, status, body, hdr, http.StatusMethodNotAllowed, apierr.CodeMethodNotAllowed)
}

func TestGatewayBackendDeathAndRecovery(t *testing.T) {
	s := newGateStack(t, 2, serve.HandlerConfig{}, Config{FailAfter: 1})
	defer s.Close()
	s.gw.CheckNow(context.Background())

	// Find a key owned by backend 2, then kill backend 2's listener.
	var victimKey string
	for i := 0; ; i++ {
		k := fmt.Sprintf("k-%d", i)
		if url, _ := s.gw.BackendFor(k); url == s.backends[1].ts.URL {
			victimKey = k
			break
		}
	}
	s.backends[1].ts.CloseClientConnections()
	s.backends[1].Close()

	// First relay attempt fails at the transport and (FailAfter=1) demotes
	// the backend; the client sees a typed retryable error.
	status, body, hdr := postBody(t, s.ts.Client(), http.MethodPost,
		s.ts.URL+"/v1/classify", wire.ContentTypeSamples,
		map[string]string{"X-Stream-Id": victimKey}, mustFrame(t, testLead(2, 3)))
	wantTyped(t, status, body, hdr, http.StatusServiceUnavailable, apierr.CodeServerOverloaded)

	// The key now rehashes to the survivor and serves fine.
	status, _, hdr2 := postBody(t, s.ts.Client(), http.MethodPost,
		s.ts.URL+"/v1/classify", wire.ContentTypeSamples,
		map[string]string{"X-Stream-Id": victimKey}, mustFrame(t, testLead(2, 3)))
	if status != http.StatusOK {
		t.Fatalf("failover classify status %d", status)
	}
	if got := hdr2.Get("X-Rpgate-Backend"); got != s.backends[0].ts.URL {
		t.Fatalf("failover went to %s, want survivor %s", got, s.backends[0].ts.URL)
	}

	// With every backend gone, the gateway sheds with a typed error.
	s.backends[0].ts.CloseClientConnections()
	s.backends[0].Close()
	for i := 0; i < 2; i++ { // burn the survivor's failure budget
		postBody(t, s.ts.Client(), http.MethodGet, s.ts.URL+"/v1/models", "", nil, nil)
	}
	status, body, hdr = postBody(t, s.ts.Client(), http.MethodGet, s.ts.URL+"/v1/models", "", nil, nil)
	wantTyped(t, status, body, hdr, http.StatusServiceUnavailable, apierr.CodeServerOverloaded)
	if !strings.Contains(string(body), "no routable backend") &&
		!strings.Contains(string(body), "unreachable") {
		t.Fatalf("unexpected shed message: %s", body)
	}
}

func mustFrame(t *testing.T, samples []int32) []byte {
	t.Helper()
	f, err := wire.AppendFrame(nil, samples)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// --- catalog fan-out ---

func TestGatewayCatalogFanout(t *testing.T) {
	s := newGateStack(t, 3, serve.HandlerConfig{}, Config{})
	defer s.Close()
	s.gw.CheckNow(context.Background())

	// Upload a second model through the gateway: every backend must hold it
	// with the same digest.
	data := modelBytes(t, 2)
	status, body, _ := postBody(t, s.ts.Client(), http.MethodPost,
		s.ts.URL+"/v1/models?name=rollout", "application/octet-stream", nil, data)
	if status != http.StatusCreated {
		t.Fatalf("fan-out upload status %d: %s", status, body)
	}
	var ur UploadResponse
	if err := json.Unmarshal(body, &ur); err != nil {
		t.Fatal(err)
	}
	if ur.Ref != "rollout@v1" || len(ur.Backends) != 3 {
		t.Fatalf("upload response %+v, want rollout@v1 on 3 backends", ur)
	}
	for _, b := range s.backends {
		st, detail, _ := postBody(t, b.ts.Client(), http.MethodGet, b.ts.URL+"/v1/models/rollout@v1", "", nil, nil)
		if st != http.StatusOK {
			t.Fatalf("backend %s missing rollout@v1: %d %s", b.instance, st, detail)
		}
		var man catalog.Manifest
		if err := json.Unmarshal(detail, &man); err != nil {
			t.Fatal(err)
		}
		if man.Digest != ur.Digest {
			t.Fatalf("backend %s digest %s, want %s", b.instance, man.Digest, ur.Digest)
		}
	}

	// Re-uploading identical bytes is the same typed conflict one backend
	// would produce.
	status, body, hdr := postBody(t, s.ts.Client(), http.MethodPost,
		s.ts.URL+"/v1/models?name=rollout", "application/octet-stream", nil, data)
	wantTyped(t, status, body, hdr, http.StatusConflict, apierr.CodeModelExists)

	// Repoint the default fleet-wide, then retire the version fleet-wide.
	status, body, _ = postBody(t, s.ts.Client(), http.MethodPut,
		s.ts.URL+"/v1/default", "application/json", nil, []byte(`{"model":"rollout@v1"}`))
	if status != http.StatusOK {
		t.Fatalf("default fan-out status %d: %s", status, body)
	}
	for _, b := range s.backends {
		_, inv, _ := postBody(t, b.ts.Client(), http.MethodGet, b.ts.URL+"/v1/models", "", nil, nil)
		if !bytes.Contains(inv, []byte(`"default":"rollout@v1"`)) {
			t.Fatalf("backend %s default not moved: %s", b.instance, inv)
		}
	}
	// Deleting what the default resolves to is refused; repoint first, then
	// retire the version fleet-wide.
	if status, body, _ = postBody(t, s.ts.Client(), http.MethodPut,
		s.ts.URL+"/v1/default", "application/json", nil, []byte(`{"model":"m"}`)); status != http.StatusOK {
		t.Fatalf("default restore status %d: %s", status, body)
	}
	status, body, _ = postBody(t, s.ts.Client(), http.MethodDelete,
		s.ts.URL+"/v1/models/rollout@v1", "", nil, nil)
	if status != http.StatusOK {
		t.Fatalf("delete fan-out status %d: %s", status, body)
	}
	status, body, hdr = postBody(t, s.ts.Client(), http.MethodDelete,
		s.ts.URL+"/v1/models/rollout@v1", "", nil, nil)
	wantTyped(t, status, body, hdr, http.StatusNotFound, apierr.CodeModelNotFound)
}

// TestGatewayDivergenceRefusal: a backend whose catalog digest for a fleet
// ref contradicts the authoritative view is refused routing until it
// converges.
func TestGatewayDivergenceRefusal(t *testing.T) {
	s := newGateStack(t, 2, serve.HandlerConfig{}, Config{})
	defer s.Close()

	// Poison backend 2: replace model "m" with different bytes under a new
	// version, so its m@v2 digest will disagree once backend 1 gains an
	// m@v2 of its own... simpler: upload divergent bytes as the same next
	// version on each backend directly (bypassing the gateway).
	for i, seed := range []uint64{5, 6} { // different bytes per backend
		st, body, _ := postBody(t, s.backends[i].ts.Client(), http.MethodPost,
			s.backends[i].ts.URL+"/v1/models?name=m", "application/octet-stream", nil, modelBytes(t, seed))
		if st != http.StatusCreated {
			t.Fatalf("backend seed upload: %d %s", st, body)
		}
	}
	s.gw.CheckNow(context.Background())

	st := s.gw.Status()
	if !st.OK {
		t.Fatalf("gateway not OK: %+v", st)
	}
	var divergent, routable int
	for _, b := range st.Backends {
		if b.Divergent {
			divergent++
			if !strings.Contains(b.LastErr, "divergence") {
				t.Fatalf("divergent backend lastErr %q", b.LastErr)
			}
		} else {
			routable++
		}
	}
	// Member order arbitration: the first backend's digest is adopted, the
	// second is the diverging one.
	if divergent != 1 || routable != 1 {
		t.Fatalf("divergent=%d routable=%d, want exactly one of each: %+v", divergent, routable, st.Backends)
	}
	if !st.Backends[1].Divergent {
		t.Fatalf("arbitration order: backend 2 should be the divergent one, got %+v", st.Backends)
	}

	// Every stream now routes to the one convergent backend, divergent keys
	// included.
	for i := 0; i < 8; i++ {
		url, ok := s.gw.BackendFor(fmt.Sprintf("div-%d", i))
		if !ok || url != s.backends[0].ts.URL {
			t.Fatalf("key div-%d routed to %s (ok=%v), want convergent backend", i, url, ok)
		}
	}

	// Convergence heals: overwrite backend 2's divergent version with
	// backend 1's bytes (delete + re-upload), reprobe, back in rotation.
	st2, body, _ := postBody(t, s.backends[1].ts.Client(), http.MethodDelete,
		s.backends[1].ts.URL+"/v1/models/m@v2", "", nil, nil)
	if st2 != http.StatusOK {
		t.Fatalf("heal delete: %d %s", st2, body)
	}
	st2, body, _ = postBody(t, s.backends[1].ts.Client(), http.MethodPost,
		s.backends[1].ts.URL+"/v1/models?name=m", "application/octet-stream", nil, modelBytes(t, 5))
	if st2 != http.StatusCreated {
		t.Fatalf("heal upload: %d %s", st2, body)
	}
	s.gw.CheckNow(context.Background())
	for _, b := range s.gw.Status().Backends {
		if b.Divergent {
			t.Fatalf("backend %s still divergent after convergence: %q", b.URL, b.LastErr)
		}
	}
}

// TestGatewayDrainingBackend: a backend refusing healthz with a typed
// retryable code is taken out of rotation as draining, not dead.
func TestGatewayDrainingBackend(t *testing.T) {
	// A fake backend that answers healthz with typed shutting_down.
	draining := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":{"code":"shutting_down","message":"draining"}}`))
	}))
	defer draining.Close()
	healthy := newBackendStack(t, "b1", serve.HandlerConfig{})
	defer healthy.Close()

	gw, err := New(Config{Backends: []string{healthy.ts.URL, draining.URL}, HealthInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	gw.CheckNow(context.Background())

	st := gw.Status()
	if !st.Backends[1].Draining || !st.Backends[1].Healthy {
		t.Fatalf("typed-refusing backend %+v, want healthy+draining", st.Backends[1])
	}
	for i := 0; i < 8; i++ {
		if url, ok := gw.BackendFor(fmt.Sprintf("dr-%d", i)); !ok || url != healthy.ts.URL {
			t.Fatalf("key routed to %s (ok=%v), want the healthy backend", url, ok)
		}
	}
}

// TestGatewayCloseRefusesRelays: after Close, relays get typed
// shutting_down (the gateway's own drain contract).
func TestGatewayCloseRefusesRelays(t *testing.T) {
	s := newGateStack(t, 1, serve.HandlerConfig{}, Config{})
	defer s.Close()
	s.gw.Close()
	status, body, hdr := postBody(t, s.ts.Client(), http.MethodGet, s.ts.URL+"/v1/models", "", nil, nil)
	wantTyped(t, status, body, hdr, http.StatusServiceUnavailable, apierr.CodeShuttingDown)
}

// --- relay copy: the zero-allocation claim ---

func TestRelayCopyZeroAlloc(t *testing.T) {
	frame := mustFrame(t, testLead(2, 9))
	buf := make([]byte, relayBufBytes)
	src := bytes.NewReader(frame)
	flush := func() error { return nil }
	testutil.AssertZeroAllocN(t, "RelayCopy per relayed body", 1000, func() {
		src.Reset(frame)
		if _, err := RelayCopy(io.Discard, flush, src, buf); err != nil {
			t.Fatal(err)
		}
	})
}

func TestRelayCopyDistinguishesWriteErrors(t *testing.T) {
	frame := mustFrame(t, testLead(2, 9))
	buf := make([]byte, 8)
	_, err := RelayCopy(failWriter{}, nil, bytes.NewReader(frame), buf)
	if !isRelayWriteError(err) {
		t.Fatalf("write failure not marked client-side: %v", err)
	}
	_, err = RelayCopy(io.Discard, nil, io.MultiReader(bytes.NewReader(frame), failReader{}), buf)
	if err == nil || isRelayWriteError(err) {
		t.Fatalf("read failure misclassified: %v", err)
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, fmt.Errorf("client gone") }

type failReader struct{}

func (failReader) Read(p []byte) (int, error) { return 0, fmt.Errorf("backend died") }

// BenchmarkRelayChunk is the BENCH gateway row's unit: one 360-sample
// binary frame through the relay loop.
func BenchmarkRelayChunk(b *testing.B) {
	lead := testLead(1, 9)[:360]
	frame, err := wire.AppendFrame(nil, lead)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, relayBufBytes)
	src := bytes.NewReader(frame)
	flush := func() error { return nil }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		src.Reset(frame)
		if _, err := RelayCopy(io.Discard, flush, src, buf); err != nil {
			b.Fatal(err)
		}
	}
}

// TestGatewayRelayNoLeak: a burst of relayed requests leaves no goroutines
// behind after the full stack closes.
func TestGatewayRelayNoLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()
	s := newGateStack(t, 2, serve.HandlerConfig{}, Config{})
	frame := mustFrame(t, testLead(2, 4))
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, body, _ := postBody(t, s.ts.Client(), http.MethodPost,
				s.ts.URL+"/v1/stream", wire.ContentTypeSamples,
				map[string]string{"X-Stream-Id": fmt.Sprintf("leak-%d", i)}, frame)
			if status != http.StatusOK {
				t.Errorf("stream %d: status %d: %s", i, status, body)
			}
		}(i)
	}
	wg.Wait()
	s.ts.Client().Transport.(*http.Transport).CloseIdleConnections()
	s.Close()
	waitGoroutines(t, baseline+2)
}
