// Package gate is the gateway tier: it routes any number of client
// connections onto a pool of rpserve backends, keeping per-stream pipeline
// state correct by stream affinity. A consistent-hash ring maps every
// stream ID onto one backend; membership changes move only the minimal
// slice of the key space (the removed backend's keys, or the share a new
// backend takes over), so a fleet-wide reshuffle never happens. The relay
// path copies bytes verbatim in both directions — binary
// application/x-rpbeat-samples uplink, NDJSON downlink — through pooled
// buffers, so a relayed response is byte-identical to the backend's and the
// steady-state per-chunk cost is allocation-free.
//
// The gateway also owns fleet-wide model consistency: POST /v1/models fans
// out to every backend with catalog.Manifest digest verification, and the
// health loop cross-checks each backend's catalog digests against the
// gateway's authoritative view — a backend serving a divergent name@vN is
// refused routing until it converges.
package gate

import "sort"

// Ring is an immutable consistent-hash ring over a backend member set.
// Every member contributes `replicas` virtual points; a key is owned by the
// first point clockwise from the key's hash. Lookups are allocation-free.
//
// The ring is rebuilt (not mutated) on membership change — see
// Gateway.Add/Remove — so readers hold one *Ring and are never torn.
type Ring struct {
	members []string // sorted, so construction order never matters
	points  []ringPoint
}

// ringPoint is one virtual node: a position on the ring and the index of
// the member that owns it.
type ringPoint struct {
	hash   uint64
	member int32
}

// DefaultReplicas is the virtual-node count per member when the caller does
// not choose: enough that a 3-node pool balances within ~10–20%, cheap
// enough that rebuilds on membership change stay microseconds.
const DefaultReplicas = 64

// NewRing builds a ring over the given members (deduplicated, order
// ignored) with `replicas` virtual points each (<= 0 means
// DefaultReplicas).
func NewRing(members []string, replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	uniq := make([]string, 0, len(members))
	seen := make(map[string]bool, len(members))
	for _, m := range members {
		if !seen[m] {
			seen[m] = true
			uniq = append(uniq, m)
		}
	}
	sort.Strings(uniq)
	r := &Ring{
		members: uniq,
		points:  make([]ringPoint, 0, len(uniq)*replicas),
	}
	for i, m := range uniq {
		h := hashKey(m)
		for v := 0; v < replicas; v++ {
			// Per-replica positions: the member hash strided by the golden
			// ratio and re-mixed, so each virtual point lands independently.
			p := mix64(h + goldenGamma*uint64(v+1))
			r.points = append(r.points, ringPoint{hash: p, member: int32(i)})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].member < r.points[b].member
	})
	return r
}

// Members returns the ring's member set, sorted. The slice is shared; do
// not mutate.
func (r *Ring) Members() []string { return r.members }

// Lookup returns the member owning key. ok is false only for an empty
// ring.
func (r *Ring) Lookup(key string) (member string, ok bool) {
	return r.LookupFunc(key, nil)
}

// LookupFunc returns the first member clockwise from key's hash for which
// usable returns true (nil means every member is usable) — how the gateway
// skips unhealthy, draining or catalog-divergent backends without
// reshuffling the healthy share of the key space. Allocation-free.
func (r *Ring) LookupFunc(key string, usable func(member string) bool) (string, bool) {
	n := len(r.points)
	if n == 0 {
		return "", false
	}
	h := hashKey(key)
	// First point at or clockwise of h (wrapping).
	start := sort.Search(n, func(i int) bool { return r.points[i].hash >= h })
	if start == n {
		start = 0
	}
	// Walk clockwise until a usable member appears. Virtual points repeat
	// members, so bound the walk by the point count: visiting every point
	// provably visits every member.
	for i := 0; i < n; i++ {
		m := r.members[r.points[(start+i)%n].member]
		if usable == nil || usable(m) {
			return m, true
		}
	}
	return "", false
}

// goldenGamma is the golden-ratio increment (the splitmix64 stream
// constant), reused from load.PatientSeed's derivation for the same reason:
// consecutive strides land maximally spread.
const goldenGamma = 0x9e3779b97f4a7c15

// mix64 is the splitmix64 finalizer: a cheap full-avalanche mix.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// hashKey hashes a string key onto the ring: FNV-1a 64 for byte mixing,
// finalized by mix64 because FNV alone avalanches poorly in the high bits
// that sort.Search depends on.
func hashKey(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return mix64(h)
}
