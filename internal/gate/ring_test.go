package gate

import (
	"fmt"
	"testing"

	"rpbeat/internal/testutil"
)

// keys returns n distinct stream-shaped keys.
func testKeys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("patient-%016x", mix64(uint64(i+1)))
	}
	return out
}

func testMembers(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://10.0.0.%d:8080", i+1)
	}
	return out
}

// owners maps every key to its ring owner.
func owners(r *Ring, keys []string) map[string]string {
	out := make(map[string]string, len(keys))
	for _, k := range keys {
		m, ok := r.Lookup(k)
		if !ok {
			panic("empty ring")
		}
		out[k] = m
	}
	return out
}

func TestRingDeterministicAndOrderInsensitive(t *testing.T) {
	keys := testKeys(1000)
	members := testMembers(3)
	a := NewRing(members, 0)
	// Same members in a different insertion order must induce the same
	// ownership: construction sorts, point hashes depend only on the
	// member string.
	b := NewRing([]string{members[2], members[0], members[1], members[0]}, 0)
	oa, ob := owners(a, keys), owners(b, keys)
	for k, m := range oa {
		if ob[k] != m {
			t.Fatalf("key %s: owner %s vs %s across construction orders", k, m, ob[k])
		}
	}
}

func TestRingBalance(t *testing.T) {
	const n = 4
	keys := testKeys(20000)
	r := NewRing(testMembers(n), 0)
	counts := map[string]int{}
	for _, k := range keys {
		m, _ := r.Lookup(k)
		counts[m]++
	}
	want := len(keys) / n
	for m, c := range counts {
		if c < want/2 || c > want*2 {
			t.Errorf("member %s owns %d keys, want within [%d, %d] of fair share %d",
				m, c, want/2, want*2, want)
		}
	}
	if len(counts) != n {
		t.Fatalf("only %d of %d members own keys", len(counts), n)
	}
}

// TestRingMinimalMovementRemove is the consistent-hashing contract: removing
// member X moves exactly X's keys and nothing else.
func TestRingMinimalMovementRemove(t *testing.T) {
	keys := testKeys(10000)
	members := testMembers(4)
	before := owners(NewRing(members, 0), keys)
	removed := members[2]
	after := owners(NewRing(append(append([]string{}, members[:2]...), members[3]), 0), keys)

	moved := 0
	for _, k := range keys {
		switch {
		case before[k] != removed:
			if after[k] != before[k] {
				t.Fatalf("key %s moved from surviving member %s to %s on removal of %s",
					k, before[k], after[k], removed)
			}
		default:
			moved++
			if after[k] == removed {
				t.Fatalf("key %s still owned by removed member", k)
			}
		}
	}
	// The removed member's share should be roughly K/N.
	if fair := len(keys) / len(members); moved < fair/2 || moved > fair*2 {
		t.Errorf("removal moved %d keys, want ~%d", moved, fair)
	}
}

// TestRingMinimalMovementAdd: adding a member moves keys only onto it.
func TestRingMinimalMovementAdd(t *testing.T) {
	keys := testKeys(10000)
	members := testMembers(3)
	added := "http://10.0.0.99:8080"
	before := owners(NewRing(members, 0), keys)
	after := owners(NewRing(append(append([]string{}, members...), added), 0), keys)

	moved := 0
	for _, k := range keys {
		if after[k] == before[k] {
			continue
		}
		if after[k] != added {
			t.Fatalf("key %s moved %s -> %s, but only the new member %s may gain keys",
				k, before[k], after[k], added)
		}
		moved++
	}
	if fair := len(keys) / (len(members) + 1); moved < fair/2 || moved > fair*2 {
		t.Errorf("addition moved %d keys, want ~%d", moved, fair)
	}
}

// TestRingLookupFuncSkips: an unusable owner's keys fail over, everyone
// else's stay put — the routing the gateway does around an unhealthy
// backend.
func TestRingLookupFuncSkips(t *testing.T) {
	keys := testKeys(5000)
	members := testMembers(3)
	r := NewRing(members, 0)
	down := members[1]
	usable := func(m string) bool { return m != down }
	for _, k := range keys {
		full, _ := r.Lookup(k)
		failover, ok := r.LookupFunc(k, usable)
		if !ok {
			t.Fatalf("key %s: no usable member", k)
		}
		if failover == down {
			t.Fatalf("key %s routed to unusable member", k)
		}
		if full != down && failover != full {
			t.Fatalf("key %s: healthy owner %s but failover routing says %s", k, full, failover)
		}
	}
	if _, ok := r.LookupFunc(keys[0], func(string) bool { return false }); ok {
		t.Fatal("lookup with nothing usable reported ok")
	}
	if _, ok := NewRing(nil, 0).Lookup("x"); ok {
		t.Fatal("empty ring reported ok")
	}
}

func TestRingLookupZeroAlloc(t *testing.T) {
	r := NewRing(testMembers(5), 0)
	keys := testKeys(64)
	usable := func(m string) bool { return true }
	testutil.AssertZeroAllocN(t, "ring lookup over 64 keys", 1000, func() {
		for _, k := range keys {
			if _, ok := r.LookupFunc(k, usable); !ok {
				t.Fatal("lookup failed")
			}
		}
	})
}

func BenchmarkRingLookup(b *testing.B) {
	r := NewRing(testMembers(16), 0)
	keys := testKeys(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Lookup(keys[i&1023])
	}
}
