package rp

import (
	"math"
	"testing"
	"testing/quick"

	"rpbeat/internal/rng"
)

// referenceProjectInt is the obviously-correct element-walking projection the
// optimized kernels are checked against.
func referenceProjectInt(m *Matrix, v []int32) []int32 {
	u := make([]int32, m.K)
	for r := 0; r < m.K; r++ {
		var s int32
		for c := 0; c < m.D; c++ {
			switch m.At(r, c) {
			case 1:
				s += v[c]
			case -1:
				s -= v[c]
			}
		}
		u[r] = s
	}
	return u
}

// TestProjectionEquivalenceQuick is the cross-representation property test:
// for random shapes (including D not divisible by 4, so packed rows start
// mid-byte) and random signed inputs, dense, packed and sparse projections —
// built along both conversion paths — must agree exactly with the reference.
func TestProjectionEquivalenceQuick(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		k := 1 + r.Intn(12)
		d := 1 + r.Intn(130)
		m := NewRandom(r, k, d)
		v := make([]int32, d)
		for i := range v {
			v[i] = int32(r.Intn(4096)) - 2048
		}
		want := referenceProjectInt(m, v)

		p := Pack(m)
		sd := NewSparse(m)
		sp, err := p.Sparse()
		if err != nil {
			t.Logf("seed %d: Sparse from packed: %v", seed, err)
			return false
		}
		if err := sd.Validate(); err != nil {
			t.Logf("seed %d: sparse validate: %v", seed, err)
			return false
		}
		for name, got := range map[string][]int32{
			"dense":         m.ProjectInt(v),
			"packed":        p.ProjectInt(v),
			"sparse-dense":  sd.ProjectInt(v),
			"sparse-packed": sp.ProjectInt(v),
		} {
			for i := range want {
				if got[i] != want[i] {
					t.Logf("seed %d (%dx%d): %s coefficient %d = %d, want %d",
						seed, k, d, name, i, got[i], want[i])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSparseAllZeroMatrix(t *testing.T) {
	m := &Matrix{K: 4, D: 10, El: make([]int8, 40)}
	s := NewSparse(m)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.NonZeros() != 0 {
		t.Fatalf("all-zero matrix has %d stored entries", s.NonZeros())
	}
	v := make([]int32, 10)
	for i := range v {
		v[i] = int32(i + 1)
	}
	for i, x := range s.ProjectInt(v) {
		if x != 0 {
			t.Fatalf("coefficient %d = %d, want 0", i, x)
		}
	}
	// The packed path agrees.
	sp, err := Pack(m).Sparse()
	if err != nil {
		t.Fatal(err)
	}
	if sp.NonZeros() != 0 {
		t.Fatalf("packed-derived sparse has %d entries", sp.NonZeros())
	}
}

func TestSparseEmptyRow(t *testing.T) {
	// Row 1 is all zeros; rows 0 and 2 are not.
	m := &Matrix{K: 3, D: 5, El: make([]int8, 15)}
	m.Set(0, 1, 1)
	m.Set(0, 4, -1)
	m.Set(2, 0, -1)
	m.Set(2, 3, 1)
	s := NewSparse(m)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	v := []int32{10, 20, 30, 40, 50}
	got := s.ProjectInt(v)
	want := referenceProjectInt(m, v)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("coefficient %d = %d, want %d", i, got[i], want[i])
		}
	}
	if got[1] != 0 {
		t.Fatalf("empty row projected to %d, want 0", got[1])
	}
}

func TestSparseDenseRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		m := NewRandom(r, 1+r.Intn(6), 1+r.Intn(60))
		back := NewSparse(m).Dense()
		for i := range m.El {
			if back.El[i] != m.El[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSparseFromPackedRejectsInvalidCode(t *testing.T) {
	p := &PackedMatrix{K: 1, D: 1, Bits: []byte{0b11}}
	if _, err := p.Sparse(); err == nil {
		t.Fatal("code 11 should be rejected")
	}
}

func TestSparseNonZerosAndByteSize(t *testing.T) {
	m := NewRandom(rng.New(21), 8, 200)
	s := NewSparse(m)
	if s.NonZeros() != m.NonZeros() {
		t.Fatalf("sparse NonZeros %d, dense %d", s.NonZeros(), m.NonZeros())
	}
	want := 4 * (s.NonZeros() + 2*(s.K+1))
	if s.ByteSize() != want {
		t.Fatalf("ByteSize %d, want %d", s.ByteSize(), want)
	}
}

func TestSparseProjectFloatMatchesDense(t *testing.T) {
	r := rng.New(22)
	m := NewRandom(r, 6, 80)
	s := NewSparse(m)
	v := make([]float64, 80)
	for i := range v {
		v[i] = r.Norm()
	}
	uf := m.Project(v)
	us := s.Project(v)
	for i := range uf {
		// Summation order differs (positives first), so allow rounding noise.
		if diff := math.Abs(uf[i] - us[i]); diff > 1e-9 {
			t.Fatalf("coefficient %d: dense %v, sparse %v (diff %g)", i, uf[i], us[i], diff)
		}
	}
}

func BenchmarkProjectIntSparse_8x50(b *testing.B) {
	r := rng.New(1)
	s := NewSparse(NewRandom(r, 8, 50))
	v := make([]int32, 50)
	for i := range v {
		v[i] = int32(r.Intn(2048))
	}
	u := make([]int32, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ProjectIntInto(v, u)
	}
}
