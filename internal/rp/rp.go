// Package rp implements Achlioptas random projections, the dimensionality
// reduction at the heart of Braojos et al. (DATE'13).
//
// A k×d projection matrix P has entries drawn i.i.d. from
//
//	+1 with probability 1/6
//	-1 with probability 1/6
//	 0 with probability 2/3
//
// (Achlioptas, JCSS 2003 — the sqrt(3) scale factor is dropped, as in the
// paper, because only ratios matter downstream and integer arithmetic is
// required on the sensor node). Projecting a beat window v of d samples
// yields u = P·v: each output coefficient is a signed sum of a subset of the
// input samples, computable with additions only.
//
// The matrix exists in three interchangeable representations, trading
// memory for projection speed (see DESIGN.md, "kernel memory layouts"):
//
//   - Matrix: dense int8, the training/mutation form;
//   - PackedMatrix: 2 bits per element, one quarter of an int8 matrix, the
//     encoding deployed on the WBSN (Sec. III-B of the paper);
//   - SparseMatrix: per-row non-zero column indices, the host-side hot-path
//     form — its projection touches only the ~1/3 non-zero entries.
//
// All three produce bit-identical integer projections (property-tested in
// sparse_test.go).
package rp

import (
	"errors"
	"fmt"

	"rpbeat/internal/rng"
)

// Matrix is a dense k×d ternary projection matrix with elements in {-1,0,+1}.
type Matrix struct {
	K, D int
	// El holds elements row-major: El[r*D+c].
	El []int8
}

// NewRandom draws a k×d Achlioptas matrix from r.
func NewRandom(r *rng.Rand, k, d int) *Matrix {
	m := &Matrix{K: k, D: d, El: make([]int8, k*d)}
	for i := range m.El {
		m.El[i] = r.Trit()
	}
	return m
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	el := make([]int8, len(m.El))
	copy(el, m.El)
	return &Matrix{K: m.K, D: m.D, El: el}
}

// At returns element (row, col).
func (m *Matrix) At(row, col int) int8 { return m.El[row*m.D+col] }

// Set assigns element (row, col); v must be in {-1, 0, +1}.
func (m *Matrix) Set(row, col int, v int8) {
	if v < -1 || v > 1 {
		panic(fmt.Sprintf("rp: element %d outside {-1,0,1}", v))
	}
	m.El[row*m.D+col] = v
}

// Validate checks structural invariants.
func (m *Matrix) Validate() error {
	if m.K <= 0 || m.D <= 0 {
		return errors.New("rp: non-positive dimensions")
	}
	if len(m.El) != m.K*m.D {
		return fmt.Errorf("rp: element count %d != %d*%d", len(m.El), m.K, m.D)
	}
	for i, v := range m.El {
		if v < -1 || v > 1 {
			return fmt.Errorf("rp: element %d = %d outside {-1,0,1}", i, v)
		}
	}
	return nil
}

// Project computes u = P·v for a float input. len(v) must equal D.
func (m *Matrix) Project(v []float64) []float64 {
	if len(v) != m.D {
		panic(fmt.Sprintf("rp: input length %d != D=%d", len(v), m.D))
	}
	u := make([]float64, m.K)
	for r := 0; r < m.K; r++ {
		row := m.El[r*m.D : (r+1)*m.D]
		var s float64
		for c, e := range row {
			switch e {
			case 1:
				s += v[c]
			case -1:
				s -= v[c]
			}
		}
		u[r] = s
	}
	return u
}

// ProjectInt computes u = P·v for integer (ADC count) input, as executed on
// the WBSN: additions and subtractions only, no multiplications.
// Output coefficients fit comfortably in int32: |u_r| <= d * 2^11.
func (m *Matrix) ProjectInt(v []int32) []int32 {
	if len(v) != m.D {
		panic(fmt.Sprintf("rp: input length %d != D=%d", len(v), m.D))
	}
	u := make([]int32, m.K)
	for r := 0; r < m.K; r++ {
		row := m.El[r*m.D : (r+1)*m.D]
		var s int32
		for c, e := range row {
			switch e {
			case 1:
				s += v[c]
			case -1:
				s -= v[c]
			}
		}
		u[r] = s
	}
	return u
}

// ProjectIntInto is ProjectInt writing into a caller-provided slice of
// length K, avoiding allocation in the per-beat hot path.
//
//rpbeat:allocfree
func (m *Matrix) ProjectIntInto(v []int32, u []int32) {
	if len(v) != m.D || len(u) != m.K {
		panic("rp: ProjectIntInto dimension mismatch")
	}
	for r := 0; r < m.K; r++ {
		row := m.El[r*m.D : (r+1)*m.D]
		var s int32
		for c, e := range row {
			switch e {
			case 1:
				s += v[c]
			case -1:
				s -= v[c]
			}
		}
		u[r] = s
	}
}

// NonZeros returns the number of non-zero elements (the projection's
// addition count, i.e. its per-beat computational cost).
func (m *Matrix) NonZeros() int {
	n := 0
	for _, v := range m.El {
		if v != 0 {
			n++
		}
	}
	return n
}

// ByteSize returns the storage footprint of the dense int8 representation.
func (m *Matrix) ByteSize() int { return len(m.El) }

// --- packed 2-bit representation ---

// PackedMatrix stores a ternary matrix at 2 bits per element, the encoding
// deployed on the WBSN (Sec. III-B: "1/4 of the memory with respect to a
// corresponding matrix of 8-bit values"). Encoding per element:
// 00 = 0, 01 = +1, 10 = -1 (11 unused).
type PackedMatrix struct {
	K, D int
	Bits []byte // ceil(K*D/4) bytes, row-major, 4 elements per byte
}

// Pack converts a dense matrix to the 2-bit representation.
func Pack(m *Matrix) *PackedMatrix {
	n := m.K * m.D
	p := &PackedMatrix{K: m.K, D: m.D, Bits: make([]byte, (n+3)/4)}
	for i, v := range m.El {
		var code byte
		switch v {
		case 1:
			code = 0b01
		case -1:
			code = 0b10
		}
		p.Bits[i/4] |= code << uint((i%4)*2)
	}
	return p
}

// Unpack expands the packed matrix back to dense form.
func (p *PackedMatrix) Unpack() (*Matrix, error) {
	m := &Matrix{K: p.K, D: p.D, El: make([]int8, p.K*p.D)}
	for i := range m.El {
		code := (p.Bits[i/4] >> uint((i%4)*2)) & 0b11
		switch code {
		case 0b00:
			m.El[i] = 0
		case 0b01:
			m.El[i] = 1
		case 0b10:
			m.El[i] = -1
		default:
			return nil, fmt.Errorf("rp: invalid packed code 11 at element %d", i)
		}
	}
	return m, nil
}

// At returns element (row, col) of the packed matrix.
func (p *PackedMatrix) At(row, col int) int8 {
	i := row*p.D + col
	code := (p.Bits[i/4] >> uint((i%4)*2)) & 0b11
	switch code {
	case 0b01:
		return 1
	case 0b10:
		return -1
	}
	return 0
}

// ProjectInt computes u = P·v directly from the packed representation, as
// the embedded code does (decode 2 bits, add/subtract).
func (p *PackedMatrix) ProjectInt(v []int32) []int32 {
	if len(v) != p.D {
		panic(fmt.Sprintf("rp: input length %d != D=%d", len(v), p.D))
	}
	u := make([]int32, p.K)
	p.ProjectIntInto(v, u)
	return u
}

// packedDecode maps one packed byte to the four signs it encodes, in column
// order (lowest 2 bits first). The invalid code 11 decodes to 0, matching At.
// 256 entries × 4 int8 = 1 KB, shared by every projection.
var packedDecode = func() (t [256][4]int8) {
	sign := [4]int8{0b00: 0, 0b01: 1, 0b10: -1, 0b11: 0}
	for b := 0; b < 256; b++ {
		for j := 0; j < 4; j++ {
			t[b][j] = sign[(b>>(2*j))&0b11]
		}
	}
	return t
}()

// ProjectIntInto is ProjectInt into a caller-provided slice.
//
// The kernel decodes four columns per byte through the packedDecode lookup
// table and accumulates with branch-free sign multiplies, instead of
// extracting and switching on every 2-bit code. The node itself would still
// execute the addition-only loop the paper costs out; this host kernel is
// arithmetically identical (ternary signs make multiply and conditional
// add/subtract the same function), just restructured for pipelined CPUs.
//
//rpbeat:allocfree
func (p *PackedMatrix) ProjectIntInto(v []int32, u []int32) {
	if len(v) != p.D || len(u) != p.K {
		panic("rp: ProjectIntInto dimension mismatch")
	}
	for r := 0; r < p.K; r++ {
		var s int32
		i := r * p.D // element index into the packed stream
		end := i + p.D
		c := 0 // column index into v
		// Rows need not start on a byte boundary when D is not a multiple
		// of 4: peel the leading partial byte.
		if off := i & 3; off != 0 {
			dec := &packedDecode[p.Bits[i>>2]]
			for ; off < 4 && i < end; off, i, c = off+1, i+1, c+1 {
				s += int32(dec[off]) * v[c]
			}
		}
		// Full bytes: four columns per table lookup.
		for ; i+4 <= end; i, c = i+4, c+4 {
			dec := &packedDecode[p.Bits[i>>2]]
			s += int32(dec[0])*v[c] + int32(dec[1])*v[c+1] +
				int32(dec[2])*v[c+2] + int32(dec[3])*v[c+3]
		}
		// Trailing partial byte.
		if i < end {
			dec := &packedDecode[p.Bits[i>>2]]
			for off := 0; i < end; off, i, c = off+1, i+1, c+1 {
				s += int32(dec[off]) * v[c]
			}
		}
		u[r] = s
	}
}

// ByteSize returns the storage footprint of the packed representation.
func (p *PackedMatrix) ByteSize() int { return len(p.Bits) }

// --- downsampling composition ---

// DownsampleColumns returns a new matrix that operates on a signal
// downsampled by the given factor: column c of the result corresponds to
// column c*factor of m. It implements the memory reduction of Sec. III-B
// ("if one every four samples of the acquired signal is considered, the size
// of the matrix is reduced by a factor of four").
func (m *Matrix) DownsampleColumns(factor int) *Matrix {
	if factor <= 1 {
		return m.Clone()
	}
	d2 := (m.D + factor - 1) / factor
	out := &Matrix{K: m.K, D: d2, El: make([]int8, m.K*d2)}
	for r := 0; r < m.K; r++ {
		for c := 0; c < d2; c++ {
			out.El[r*d2+c] = m.El[r*m.D+c*factor]
		}
	}
	return out
}
