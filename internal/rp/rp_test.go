package rp

import (
	"math"
	"testing"
	"testing/quick"

	"rpbeat/internal/rng"
)

func TestNewRandomDimensions(t *testing.T) {
	m := NewRandom(rng.New(1), 8, 200)
	if m.K != 8 || m.D != 200 || len(m.El) != 1600 {
		t.Fatalf("bad dimensions: %d x %d, %d elements", m.K, m.D, len(m.El))
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNewRandomSparsity(t *testing.T) {
	m := NewRandom(rng.New(2), 32, 200)
	zeros := len(m.El) - m.NonZeros()
	frac := float64(zeros) / float64(len(m.El))
	if frac < 0.6 || frac > 0.73 {
		t.Fatalf("zero fraction %.3f, want ~2/3", frac)
	}
}

func TestProjectIntMatchesFloat(t *testing.T) {
	r := rng.New(3)
	m := NewRandom(r, 8, 50)
	vi := make([]int32, 50)
	vf := make([]float64, 50)
	for i := range vi {
		vi[i] = int32(r.Intn(2048))
		vf[i] = float64(vi[i])
	}
	ui := m.ProjectInt(vi)
	uf := m.Project(vf)
	for i := range ui {
		if float64(ui[i]) != uf[i] {
			t.Fatalf("coefficient %d: int %d, float %v", i, ui[i], uf[i])
		}
	}
}

func TestProjectLinearity(t *testing.T) {
	r := rng.New(4)
	m := NewRandom(r, 6, 40)
	a := make([]float64, 40)
	b := make([]float64, 40)
	for i := range a {
		a[i], b[i] = r.Norm(), r.Norm()
	}
	sum := make([]float64, 40)
	for i := range sum {
		sum[i] = a[i] + 2*b[i]
	}
	ua, ub, us := m.Project(a), m.Project(b), m.Project(sum)
	for i := range us {
		if math.Abs(us[i]-(ua[i]+2*ub[i])) > 1e-9 {
			t.Fatalf("linearity violated at %d", i)
		}
	}
}

func TestProjectPanicsOnBadLength(t *testing.T) {
	m := NewRandom(rng.New(5), 4, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Project(make([]float64, 11))
}

func TestSetValidation(t *testing.T) {
	m := NewRandom(rng.New(6), 2, 2)
	m.Set(0, 0, -1)
	m.Set(1, 1, 1)
	if m.At(0, 0) != -1 || m.At(1, 1) != 1 {
		t.Fatal("Set/At mismatch")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Set(2) should panic")
		}
	}()
	m.Set(0, 0, 2)
}

func TestCloneIsDeep(t *testing.T) {
	m := NewRandom(rng.New(7), 3, 3)
	c := m.Clone()
	c.El[0] = -m.El[0]
	if m.El[0] == c.El[0] && m.El[0] != 0 {
		t.Fatal("clone aliases original")
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		k := 1 + r.Intn(8)
		d := 1 + r.Intn(100)
		m := NewRandom(r, k, d)
		p := Pack(m)
		back, err := p.Unpack()
		if err != nil {
			return false
		}
		for i := range m.El {
			if back.El[i] != m.El[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPackedAt(t *testing.T) {
	m := NewRandom(rng.New(8), 5, 37)
	p := Pack(m)
	for r := 0; r < m.K; r++ {
		for c := 0; c < m.D; c++ {
			if p.At(r, c) != m.At(r, c) {
				t.Fatalf("packed At(%d,%d) = %d, want %d", r, c, p.At(r, c), m.At(r, c))
			}
		}
	}
}

func TestPackedProjectMatchesDense(t *testing.T) {
	r := rng.New(9)
	m := NewRandom(r, 8, 50)
	p := Pack(m)
	v := make([]int32, 50)
	for i := range v {
		v[i] = int32(r.Intn(2048)) - 1024
	}
	ud := m.ProjectInt(v)
	up := p.ProjectInt(v)
	for i := range ud {
		if ud[i] != up[i] {
			t.Fatalf("coefficient %d: dense %d, packed %d", i, ud[i], up[i])
		}
	}
}

func TestPackedByteSizeIsQuarter(t *testing.T) {
	m := NewRandom(rng.New(10), 8, 200)
	p := Pack(m)
	if p.ByteSize() != m.ByteSize()/4 {
		t.Fatalf("packed %d bytes, dense %d bytes; want exactly 1/4", p.ByteSize(), m.ByteSize())
	}
}

func TestUnpackRejectsInvalidCode(t *testing.T) {
	p := &PackedMatrix{K: 1, D: 1, Bits: []byte{0b11}}
	if _, err := p.Unpack(); err == nil {
		t.Fatal("code 11 should be rejected")
	}
}

func TestDownsampleColumns(t *testing.T) {
	m := NewRandom(rng.New(11), 4, 200)
	d := m.DownsampleColumns(4)
	if d.K != 4 || d.D != 50 {
		t.Fatalf("downsampled dims %dx%d, want 4x50", d.K, d.D)
	}
	for r := 0; r < 4; r++ {
		for c := 0; c < 50; c++ {
			if d.At(r, c) != m.At(r, c*4) {
				t.Fatalf("element (%d,%d) mismatch", r, c)
			}
		}
	}
	// Factor 1 clones.
	one := m.DownsampleColumns(1)
	one.El[0] = 0
	_ = one
}

func TestDownsampledProjectionEquivalence(t *testing.T) {
	// Projecting a downsampled signal with downsampled columns must equal
	// projecting with the original matrix restricted to those samples.
	r := rng.New(12)
	m := NewRandom(r, 8, 200)
	v := make([]int32, 200)
	for i := range v {
		v[i] = int32(r.Intn(2048))
	}
	vd := make([]int32, 50)
	for i := range vd {
		vd[i] = v[i*4]
	}
	got := m.DownsampleColumns(4).ProjectInt(vd)
	want := make([]int32, 8)
	for row := 0; row < 8; row++ {
		var s int32
		for c := 0; c < 50; c++ {
			switch m.At(row, c*4) {
			case 1:
				s += v[c*4]
			case -1:
				s -= v[c*4]
			}
		}
		want[row] = s
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("coefficient %d: got %d want %d", i, got[i], want[i])
		}
	}
}

func TestJLDistancePreservation(t *testing.T) {
	// Johnson-Lindenstrauss sanity: with k=32 and the proper sqrt(3/k)
	// scaling, pairwise distances are preserved within a modest distortion
	// on average. This is a statistical check of projection quality.
	r := rng.New(13)
	const d, k, npts = 200, 32, 40
	m := NewRandom(r, k, d)
	pts := make([][]float64, npts)
	proj := make([][]float64, npts)
	scale := math.Sqrt(3.0 / k)
	for i := range pts {
		pts[i] = make([]float64, d)
		for j := range pts[i] {
			pts[i][j] = r.Norm()
		}
		proj[i] = m.Project(pts[i])
		for j := range proj[i] {
			proj[i][j] *= scale
		}
	}
	dist := func(a, b []float64) float64 {
		var s float64
		for i := range a {
			s += (a[i] - b[i]) * (a[i] - b[i])
		}
		return math.Sqrt(s)
	}
	var ratioSum float64
	var count int
	for i := 0; i < npts; i++ {
		for j := i + 1; j < npts; j++ {
			do := dist(pts[i], pts[j])
			dp := dist(proj[i], proj[j])
			ratioSum += dp / do
			count++
		}
	}
	meanRatio := ratioSum / float64(count)
	if meanRatio < 0.85 || meanRatio > 1.15 {
		t.Fatalf("mean distance ratio %.3f, want ~1 (JL property)", meanRatio)
	}
}

func TestProjectIntNoOverflowWithinADCRange(t *testing.T) {
	// Worst case: all-ones row, all samples at ADC max. 200 * 2047 << 2^31.
	m := &Matrix{K: 1, D: 200, El: make([]int8, 200)}
	for i := range m.El {
		m.El[i] = 1
	}
	v := make([]int32, 200)
	for i := range v {
		v[i] = 2047
	}
	u := m.ProjectInt(v)
	if u[0] != 200*2047 {
		t.Fatalf("sum = %d, want %d", u[0], 200*2047)
	}
}

func BenchmarkProjectIntDense_8x200(b *testing.B) {
	r := rng.New(1)
	m := NewRandom(r, 8, 200)
	v := make([]int32, 200)
	for i := range v {
		v[i] = int32(r.Intn(2048))
	}
	u := make([]int32, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ProjectIntInto(v, u)
	}
}

func BenchmarkProjectIntPacked_8x50(b *testing.B) {
	r := rng.New(1)
	m := NewRandom(r, 8, 50)
	p := Pack(m)
	v := make([]int32, 50)
	for i := range v {
		v[i] = int32(r.Intn(2048))
	}
	u := make([]int32, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ProjectIntInto(v, u)
	}
}
