package rp

import (
	"errors"
	"fmt"
)

// SparseMatrix is the third representation of a ternary projection matrix,
// optimized for the host-side hot path: per row, only the column indices of
// the non-zero entries are stored, split by sign. ProjectIntInto then costs
// exactly NonZeros() additions/subtractions with no per-element branch —
// the ~d/3 operations per coefficient the paper's energy argument assumes
// (an Achlioptas matrix is zero with probability 2/3), instead of the d
// element decodes the dense and packed kernels pay.
//
// Layout is CSR-like: all rows' indices are concatenated in Pos and Neg,
// with PosStart/NegStart (length K+1) marking row boundaries, so the whole
// structure is four flat slices regardless of K.
//
// SparseMatrix trades memory for speed — see ByteSize and the "kernel memory
// layouts" section of DESIGN.md. It is built from a Matrix or PackedMatrix
// at load time and is immutable afterwards, so it may be shared freely
// across goroutines.
type SparseMatrix struct {
	K, D int
	// Pos holds the column indices of +1 entries, all rows concatenated;
	// row r's indices are Pos[PosStart[r]:PosStart[r+1]].
	Pos []int32
	// Neg holds the column indices of -1 entries, same layout.
	Neg []int32
	// PosStart and NegStart are the K+1 row offsets into Pos and Neg.
	PosStart, NegStart []int32
}

// NewSparse builds the sparse representation of a dense ternary matrix.
func NewSparse(m *Matrix) *SparseMatrix {
	s := &SparseMatrix{
		K:        m.K,
		D:        m.D,
		PosStart: make([]int32, m.K+1),
		NegStart: make([]int32, m.K+1),
	}
	npos, nneg := 0, 0
	for _, v := range m.El {
		switch v {
		case 1:
			npos++
		case -1:
			nneg++
		}
	}
	s.Pos = make([]int32, 0, npos)
	s.Neg = make([]int32, 0, nneg)
	for r := 0; r < m.K; r++ {
		row := m.El[r*m.D : (r+1)*m.D]
		for c, e := range row {
			switch e {
			case 1:
				s.Pos = append(s.Pos, int32(c))
			case -1:
				s.Neg = append(s.Neg, int32(c))
			}
		}
		s.PosStart[r+1] = int32(len(s.Pos))
		s.NegStart[r+1] = int32(len(s.Neg))
	}
	return s
}

// Sparse builds the sparse representation directly from the packed 2-bit
// form, without materializing the dense matrix. It fails on the invalid
// code 11, like Unpack.
func (p *PackedMatrix) Sparse() (*SparseMatrix, error) {
	s := &SparseMatrix{
		K:        p.K,
		D:        p.D,
		PosStart: make([]int32, p.K+1),
		NegStart: make([]int32, p.K+1),
	}
	for r := 0; r < p.K; r++ {
		base := r * p.D
		for c := 0; c < p.D; c++ {
			i := base + c
			switch (p.Bits[i/4] >> uint((i%4)*2)) & 0b11 {
			case 0b01:
				s.Pos = append(s.Pos, int32(c))
			case 0b10:
				s.Neg = append(s.Neg, int32(c))
			case 0b11:
				return nil, fmt.Errorf("rp: invalid packed code 11 at element %d", i)
			}
		}
		s.PosStart[r+1] = int32(len(s.Pos))
		s.NegStart[r+1] = int32(len(s.Neg))
	}
	return s, nil
}

// Dense expands the sparse matrix back to the dense form.
func (s *SparseMatrix) Dense() *Matrix {
	m := &Matrix{K: s.K, D: s.D, El: make([]int8, s.K*s.D)}
	for r := 0; r < s.K; r++ {
		for _, c := range s.Pos[s.PosStart[r]:s.PosStart[r+1]] {
			m.El[r*s.D+int(c)] = 1
		}
		for _, c := range s.Neg[s.NegStart[r]:s.NegStart[r+1]] {
			m.El[r*s.D+int(c)] = -1
		}
	}
	return m
}

// Validate checks structural invariants: monotone row offsets and in-range,
// strictly increasing column indices per row (the order NewSparse and
// PackedMatrix.Sparse produce, and what Dense round-tripping relies on).
func (s *SparseMatrix) Validate() error {
	if s.K <= 0 || s.D <= 0 {
		return errors.New("rp: non-positive dimensions")
	}
	if len(s.PosStart) != s.K+1 || len(s.NegStart) != s.K+1 {
		return fmt.Errorf("rp: row offset lengths %d/%d, want %d", len(s.PosStart), len(s.NegStart), s.K+1)
	}
	if s.PosStart[0] != 0 || s.NegStart[0] != 0 {
		return errors.New("rp: row offsets must start at 0")
	}
	if int(s.PosStart[s.K]) != len(s.Pos) || int(s.NegStart[s.K]) != len(s.Neg) {
		return errors.New("rp: final row offsets do not cover the index slices")
	}
	check := func(idx []int32, start []int32, what string) error {
		for r := 0; r < s.K; r++ {
			if start[r] > start[r+1] {
				return fmt.Errorf("rp: %s offsets decrease at row %d", what, r)
			}
			row := idx[start[r]:start[r+1]]
			for i, c := range row {
				if c < 0 || int(c) >= s.D {
					return fmt.Errorf("rp: %s column %d out of range in row %d", what, c, r)
				}
				if i > 0 && c <= row[i-1] {
					return fmt.Errorf("rp: %s columns not strictly increasing in row %d", what, r)
				}
			}
		}
		return nil
	}
	if err := check(s.Pos, s.PosStart, "pos"); err != nil {
		return err
	}
	return check(s.Neg, s.NegStart, "neg")
}

// ProjectInt computes u = P·v for integer input, touching only the non-zero
// entries.
func (s *SparseMatrix) ProjectInt(v []int32) []int32 {
	if len(v) != s.D {
		panic(fmt.Sprintf("rp: input length %d != D=%d", len(v), s.D))
	}
	u := make([]int32, s.K)
	s.ProjectIntInto(v, u)
	return u
}

// ProjectIntInto is ProjectInt writing into a caller-provided slice of
// length K. This is the fastest integer projection kernel in the package:
// one gather-add per non-zero, no branches, no allocation.
//
//rpbeat:allocfree
func (s *SparseMatrix) ProjectIntInto(v []int32, u []int32) {
	if len(v) != s.D || len(u) != s.K {
		panic("rp: ProjectIntInto dimension mismatch")
	}
	for r := 0; r < s.K; r++ {
		var acc int32
		for _, c := range s.Pos[s.PosStart[r]:s.PosStart[r+1]] {
			acc += v[c]
		}
		for _, c := range s.Neg[s.NegStart[r]:s.NegStart[r+1]] {
			acc -= v[c]
		}
		u[r] = acc
	}
}

// Project computes u = P·v for float input. Unlike the integer kernels it
// is not bit-identical to Matrix.Project: summing positives then negatives
// reorders the floating-point additions (differences are at rounding level;
// the integer projections, where ternary matrices actually ship, are exact).
func (s *SparseMatrix) Project(v []float64) []float64 {
	if len(v) != s.D {
		panic(fmt.Sprintf("rp: input length %d != D=%d", len(v), s.D))
	}
	u := make([]float64, s.K)
	for r := 0; r < s.K; r++ {
		var acc float64
		for _, c := range s.Pos[s.PosStart[r]:s.PosStart[r+1]] {
			acc += v[c]
		}
		for _, c := range s.Neg[s.NegStart[r]:s.NegStart[r+1]] {
			acc -= v[c]
		}
		u[r] = acc
	}
	return u
}

// NonZeros returns the number of stored entries — the projection's exact
// addition count.
func (s *SparseMatrix) NonZeros() int { return len(s.Pos) + len(s.Neg) }

// ByteSize returns the storage footprint of the sparse representation:
// 4 bytes per non-zero index plus the two row-offset arrays. For an
// Achlioptas matrix (1/3 non-zero on average) this is ~4/3 bytes per
// element — larger than dense int8 (1 B/el) and packed (1/4 B/el); the
// sparse form buys speed, not memory (see DESIGN.md).
func (s *SparseMatrix) ByteSize() int {
	return 4 * (len(s.Pos) + len(s.Neg) + len(s.PosStart) + len(s.NegStart))
}
