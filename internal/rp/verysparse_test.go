package rp

import (
	"math"
	"testing"

	"rpbeat/internal/rng"
)

// TestNewVerySparse checks the family invariants: valid ternary matrices, no
// all-zero rows (a dead embedding bit), and an empirical density near the
// 1/√d target.
func TestNewVerySparse(t *testing.T) {
	r := rng.New(17)
	const k, d = 32, 50
	var nonzero, total int
	for trial := 0; trial < 20; trial++ {
		m := NewVerySparse(r, k, d)
		if err := m.Validate(); err != nil {
			t.Fatal(err)
		}
		for row := 0; row < k; row++ {
			alive := false
			for _, e := range m.El[row*d : (row+1)*d] {
				if e != 0 {
					alive = true
					nonzero++
				}
			}
			if !alive {
				t.Fatalf("trial %d: row %d is all zeros", trial, row)
			}
		}
		total += k * d
	}
	want := 1 / math.Sqrt(d)
	got := float64(nonzero) / float64(total)
	// Rejection of empty rows biases density up slightly; allow a loose band.
	if got < 0.5*want || got > 2*want {
		t.Fatalf("density %.4f far from 1/sqrt(d)=%.4f", got, want)
	}
}
