package rp

import "rpbeat/internal/rng"

// NewVerySparse draws a k×d ternary matrix from the "very sparse" random
// projection family (Li, Hastie, Church, KDD 2006), at the aggressive
// s = d/ln(d) end of their range: each element is
//
//	+1 with probability ln(d)/(2d)
//	-1 with probability ln(d)/(2d)
//	 0 otherwise
//
// i.e. expected density ln(d)/d instead of the Achlioptas 1/3. For the
// paper's d = 50 windows that is ~4 non-zeros per coefficient instead of
// ~17 — the projection cost drops by ~4x. Li et al. show the d/log d regime
// keeps the Johnson-Lindenstrauss distance estimates consistent when the
// data are reasonably behaved, which downsampled ECG windows are.
//
// This family is what the binary embedding head (internal/bitemb) trains
// over: its Hamming-distance classifier quantizes every coefficient to one
// bit anyway, so the 1-bit quantization — not projection fidelity —
// dominates the distortion budget, and the sparsity budget goes to speed.
// The accuracy cost is measured, not assumed — see the head-comparison
// driver in internal/experiments.
//
// Rows are rejection-sampled to hold at least two non-zero elements (one
// when d == 1), so no coefficient (and no embedding bit) hangs off a single
// sample regardless of how sparse the draw runs.
func NewVerySparse(r *rng.Rand, k, d int) *Matrix {
	minNZ := 2
	if d < 2 {
		minNZ = d
	}
	m := &Matrix{K: k, D: d, El: make([]int8, k*d)}
	for row := 0; row < k; row++ {
		el := m.El[row*d : (row+1)*d]
		for {
			nonzero := 0
			for i := range el {
				el[i] = r.LogSparseTrit(d)
				if el[i] != 0 {
					nonzero++
				}
			}
			if nonzero >= minNZ {
				break
			}
		}
	}
	return m
}
