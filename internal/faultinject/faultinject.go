// Package faultinject is a deterministic, seed-driven fault layer for
// exercising the serving tier's failure paths. Faults are byte-positioned —
// "kill this connection after 4096 bytes", "tear this frame at byte 10" — so
// a failure scenario reproduces exactly from its seed, and a chaos run that
// catches a failover bug can be replayed byte for byte.
//
// The wrappers are orthogonal to what they wrap: NewReader and NewWriter
// fault a single byte stream, Transport faults the bodies of HTTP round
// trips, and NewListener faults accepted connections. Schedules come either
// from explicit Fault values or from a Plan, a splitmix64 generator keyed by
// seed and unit name, so independent components (a load generator here, a
// gateway test there) derive the same faults from the same seed without
// coordinating.
package faultinject

import (
	"errors"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// Kind classifies a fault by what it does to the byte stream.
type Kind uint8

const (
	// KillAfterBytes ends the stream with ErrInjected once AtByte bytes have
	// flowed — the abrupt process-death / network-partition shape.
	KillAfterBytes Kind = iota + 1
	// TornFrame is KillAfterBytes aimed mid-frame: the caller positions
	// AtByte inside a wire frame so the victim sees a truncated header or
	// payload rather than a clean record boundary.
	TornFrame
	// LatencySpike stalls the stream once, for Delay, when it reaches
	// AtByte, then lets it proceed untouched.
	LatencySpike
	// ConnReset fails the very next operation, delivering nothing — the
	// RST-on-accept shape.
	ConnReset
	// SlowLoris throttles the stream from AtByte on: every operation moves
	// at most slowLorisChunk bytes and pays Delay first.
	SlowLoris
)

// slowLorisChunk is the per-operation byte cap of a tripped SlowLoris fault.
const slowLorisChunk = 16

func (k Kind) String() string {
	switch k {
	case KillAfterBytes:
		return "kill_after_bytes"
	case TornFrame:
		return "torn_frame"
	case LatencySpike:
		return "latency_spike"
	case ConnReset:
		return "conn_reset"
	case SlowLoris:
		return "slow_loris"
	default:
		return "unknown"
	}
}

// Absorbable reports whether the kind degrades only timing, never integrity:
// a stream carrying an absorbable fault must complete with zero client-visible
// failures, so load generators inject these on their own connections while
// reserving the killing kinds for the backends under test.
func (k Kind) Absorbable() bool { return k == LatencySpike || k == SlowLoris }

// Fault is one scheduled fault on a byte stream.
type Fault struct {
	Kind   Kind
	AtByte int64         // stream offset that arms the fault
	Delay  time.Duration // LatencySpike stall, or SlowLoris per-op pacing
}

// ErrInjected is the error every killing fault surfaces.
var ErrInjected = errors.New("faultinject: injected fault")

// Plan derives deterministic fault schedules: the same (Seed, unit) pair
// always yields the same Fault. Unit names are caller-chosen — a stream ID, a
// connection ordinal — and partition the seed's randomness.
type Plan struct {
	Seed     uint64
	MaxByte  int64         // exclusive AtByte bound; default 256 KiB
	MaxDelay time.Duration // exclusive Delay bound; default 40ms
}

// Pick derives the fault for unit, drawing the kind uniformly from kinds
// (all five when none are given).
func (p Plan) Pick(unit string, kinds ...Kind) Fault {
	if len(kinds) == 0 {
		kinds = []Kind{KillAfterBytes, TornFrame, LatencySpike, ConnReset, SlowLoris}
	}
	maxByte := p.MaxByte
	if maxByte <= 0 {
		maxByte = 256 << 10
	}
	maxDelay := p.MaxDelay
	if maxDelay <= 0 {
		maxDelay = 40 * time.Millisecond
	}
	// FNV-1a folds the unit name into the seed; splitmix64 whitens it into
	// independent draws.
	h := p.Seed ^ 0xcbf29ce484222325
	for i := 0; i < len(unit); i++ {
		h = (h ^ uint64(unit[i])) * 0x100000001b3
	}
	f := Fault{Kind: kinds[splitmix(&h)%uint64(len(kinds))]}
	f.AtByte = int64(splitmix(&h) % uint64(maxByte))
	f.Delay = time.Duration(splitmix(&h) % uint64(maxDelay))
	if f.Delay <= 0 {
		f.Delay = time.Millisecond
	}
	return f
}

func splitmix(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	x := *s
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// injector is the fault schedule engine shared by the reader and writer
// wrappers: it meters byte positions and decides, before each operation, how
// many bytes may flow and whether the stream dies here.
type injector struct {
	faults []Fault
	fired  []bool // LatencySpike one-shots
	pos    int64
	dead   bool
}

func newInjector(faults []Fault) injector {
	return injector{faults: faults, fired: make([]bool, len(faults))}
}

// gate runs the schedule ahead of an operation wanting up to want bytes: it
// sleeps out due latency faults and returns the byte budget, or ErrInjected
// once a killing fault has tripped.
func (in *injector) gate(want int) (int, error) {
	if in.dead {
		return 0, ErrInjected
	}
	allow := want
	for i := range in.faults {
		f := &in.faults[i]
		switch f.Kind {
		case ConnReset:
			in.dead = true
			return 0, ErrInjected
		case KillAfterBytes, TornFrame:
			left := f.AtByte - in.pos
			if left <= 0 {
				in.dead = true
				return 0, ErrInjected
			}
			if int64(allow) > left {
				allow = int(left)
			}
		case LatencySpike:
			if !in.fired[i] && in.pos >= f.AtByte {
				in.fired[i] = true
				time.Sleep(f.Delay)
			}
		case SlowLoris:
			if in.pos >= f.AtByte {
				if allow > slowLorisChunk {
					allow = slowLorisChunk
				}
				time.Sleep(f.Delay)
			}
		}
	}
	return allow, nil
}

// Reader applies a fault schedule to reads. Close passes through to the
// wrapped reader when it has one, so a Reader can stand in for a request or
// response body.
type Reader struct {
	r  io.Reader
	in injector
}

func NewReader(r io.Reader, faults ...Fault) *Reader {
	return &Reader{r: r, in: newInjector(faults)}
}

func (r *Reader) Read(p []byte) (int, error) {
	allow, err := r.in.gate(len(p))
	if err != nil {
		return 0, err
	}
	if allow < len(p) {
		p = p[:allow]
	}
	n, err := r.r.Read(p)
	r.in.pos += int64(n)
	return n, err
}

func (r *Reader) Close() error {
	if c, ok := r.r.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// Writer applies a fault schedule to writes. A killing fault surfaces as a
// short write with ErrInjected.
type Writer struct {
	w  io.Writer
	in injector
}

func NewWriter(w io.Writer, faults ...Fault) *Writer {
	return &Writer{w: w, in: newInjector(faults)}
}

func (w *Writer) Write(p []byte) (int, error) {
	written := 0
	for len(p) > 0 {
		allow, err := w.in.gate(len(p))
		if err != nil {
			return written, err
		}
		n, err := w.w.Write(p[:allow])
		w.in.pos += int64(n)
		written += n
		if err != nil {
			return written, err
		}
		p = p[n:]
	}
	return written, nil
}

// Transport injects faults into HTTP round trips: Uplink faults apply to the
// request body, Downlink faults to the response body, each round trip getting
// a fresh schedule. Times bounds how many round trips are faulted (0 = all) —
// a retrying caller whose first attempt is killed then sees clean attempts,
// which is exactly the failover scenario.
type Transport struct {
	Base     http.RoundTripper
	Uplink   []Fault
	Downlink []Fault
	Times    int32

	count atomic.Int32
}

func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	if t.Times > 0 && t.count.Add(1) > t.Times {
		return base.RoundTrip(req)
	}
	if len(t.Uplink) > 0 && req.Body != nil {
		req = req.Clone(req.Context())
		req.Body = NewReader(req.Body, t.Uplink...)
	}
	resp, err := base.RoundTrip(req)
	if err != nil || len(t.Downlink) == 0 {
		return resp, err
	}
	resp.Body = NewReader(resp.Body, t.Downlink...)
	return resp, nil
}

// Listener faults accepted connections: connection n gets the fault
// Plan.Pick("conn-<n>", Kinds...), applied independently to its read and
// write sides.
type Listener struct {
	net.Listener
	Plan  Plan
	Kinds []Kind

	n atomic.Uint64
}

func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	f := l.Plan.Pick("conn-"+strconv.FormatUint(l.n.Add(1)-1, 10), l.Kinds...)
	return &conn{
		Conn: c,
		rd:   newInjector([]Fault{f}),
		wr:   newInjector([]Fault{f}),
	}, nil
}

type conn struct {
	net.Conn
	rd, wr injector
}

func (c *conn) Read(p []byte) (int, error) {
	allow, err := c.rd.gate(len(p))
	if err != nil {
		c.Conn.Close()
		return 0, err
	}
	if allow < len(p) {
		p = p[:allow]
	}
	n, err := c.Conn.Read(p)
	c.rd.pos += int64(n)
	return n, err
}

func (c *conn) Write(p []byte) (int, error) {
	written := 0
	for len(p) > 0 {
		allow, err := c.wr.gate(len(p))
		if err != nil {
			c.Conn.Close()
			return written, err
		}
		n, err := c.Conn.Write(p[:allow])
		c.wr.pos += int64(n)
		written += n
		if err != nil {
			return written, err
		}
		p = p[n:]
	}
	return written, nil
}
