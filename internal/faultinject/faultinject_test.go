package faultinject

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestPlanDeterminism(t *testing.T) {
	p := Plan{Seed: 42}
	a := p.Pick("stream-7")
	b := p.Pick("stream-7")
	if a != b {
		t.Fatalf("same (seed, unit) gave different faults: %+v vs %+v", a, b)
	}
	if c := p.Pick("stream-8"); c == a {
		t.Fatalf("distinct units collided on fault %+v", a)
	}
	if d := (Plan{Seed: 43}).Pick("stream-7"); d == a {
		t.Fatalf("distinct seeds collided on fault %+v", a)
	}
	if a.Delay <= 0 || a.AtByte < 0 {
		t.Fatalf("degenerate fault %+v", a)
	}
}

func TestPlanPickRestrictsKinds(t *testing.T) {
	p := Plan{Seed: 9}
	for i := 0; i < 64; i++ {
		f := p.Pick("unit-"+strings.Repeat("x", i), LatencySpike, SlowLoris)
		if !f.Kind.Absorbable() {
			t.Fatalf("restricted pick returned %v", f.Kind)
		}
	}
}

func TestReaderKillAfterBytes(t *testing.T) {
	src := bytes.Repeat([]byte("abcdefgh"), 100)
	r := NewReader(bytes.NewReader(src), Fault{Kind: KillAfterBytes, AtByte: 300})
	got, err := io.ReadAll(r)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if !bytes.Equal(got, src[:300]) {
		t.Fatalf("delivered %d bytes before the kill, want exactly 300 intact", len(got))
	}
}

func TestReaderConnReset(t *testing.T) {
	r := NewReader(strings.NewReader("payload"), Fault{Kind: ConnReset})
	n, err := r.Read(make([]byte, 4))
	if n != 0 || !errors.Is(err, ErrInjected) {
		t.Fatalf("Read = (%d, %v), want (0, ErrInjected)", n, err)
	}
}

func TestReaderLatencySpikeDeliversEverything(t *testing.T) {
	src := bytes.Repeat([]byte("z"), 512)
	r := NewReader(bytes.NewReader(src),
		Fault{Kind: LatencySpike, AtByte: 100, Delay: 20 * time.Millisecond})
	start := time.Now()
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src) {
		t.Fatalf("latency spike corrupted the stream: %d/%d bytes", len(got), len(src))
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("stream finished in %v, spike never fired", d)
	}
}

func TestWriterSlowLoris(t *testing.T) {
	var sink bytes.Buffer
	w := NewWriter(&sink, Fault{Kind: SlowLoris, AtByte: 0, Delay: time.Millisecond})
	payload := bytes.Repeat([]byte("beat"), 64)
	start := time.Now()
	n, err := w.Write(payload)
	if err != nil || n != len(payload) {
		t.Fatalf("Write = (%d, %v)", n, err)
	}
	if !bytes.Equal(sink.Bytes(), payload) {
		t.Fatal("slow-loris corrupted the stream")
	}
	// 256 bytes at 16 per op with 1ms pacing is at least 16ms.
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("write finished in %v, throttle never engaged", d)
	}
}

func TestWriterTornFrameShortWrite(t *testing.T) {
	var sink bytes.Buffer
	w := NewWriter(&sink, Fault{Kind: TornFrame, AtByte: 5})
	n, err := w.Write([]byte("0123456789"))
	if n != 5 || !errors.Is(err, ErrInjected) {
		t.Fatalf("Write = (%d, %v), want (5, ErrInjected)", n, err)
	}
	if sink.String() != "01234" {
		t.Fatalf("torn at %q, want %q", sink.String(), "01234")
	}
}

func TestTransportDownlinkKill(t *testing.T) {
	body := bytes.Repeat([]byte("line\n"), 1000)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(body)
	}))
	defer ts.Close()

	tr := &Transport{Downlink: []Fault{{Kind: KillAfterBytes, AtByte: 128}}, Times: 1}
	client := &http.Client{Transport: tr}

	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("first attempt: err = %v, want ErrInjected", err)
	}
	if !bytes.Equal(got, body[:128]) {
		t.Fatalf("first attempt delivered %d bytes, want 128", len(got))
	}

	// Times: 1 — the retry (the failover attempt) is clean.
	resp, err = client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	got, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || !bytes.Equal(got, body) {
		t.Fatalf("second attempt: %d bytes, err %v — want the full clean body", len(got), err)
	}
}

func TestTransportUplinkFaultReachesServer(t *testing.T) {
	var seen int
	done := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		seen = len(b)
		close(done)
	}))
	defer ts.Close()

	client := &http.Client{Transport: &Transport{
		Uplink: []Fault{{Kind: KillAfterBytes, AtByte: 64}},
	}}
	_, err := client.Post(ts.URL, "application/octet-stream",
		bytes.NewReader(make([]byte, 4096)))
	if err == nil {
		t.Fatal("killed uplink still round-tripped cleanly")
	}
	<-done
	if seen > 64 {
		t.Fatalf("server saw %d bytes past the kill point", seen)
	}
}
