// Package ecgsyn synthesizes multi-lead electrocardiograms with annotated
// heartbeat classes and ground-truth fiducial points.
//
// It is the stand-in for the MIT-BIH Arrhythmia Database used by Braojos et
// al. (DATE'13): the real recordings are not redistributable inside this
// repository, so the experiments run on parametric signals that preserve the
// properties the classifier and DSP stages depend on — 360 Hz sampling,
// 11-bit ADC range, beat morphologies for normal sinus rhythm (N), left
// bundle branch block (L) and premature ventricular contraction (V),
// intra-subject and inter-subject variability, rhythm structure (PVC
// prematurity and compensatory pause) and realistic noise (baseline wander,
// mains interference, EMG, motion artifacts).
//
// Beats are modeled as sums of Gaussian bumps (one or more per ECG wave), a
// standard parametric ECG model (cf. McSharry et al., IEEE TBME 2003). The
// generator knows where each wave starts, peaks and ends, so delineation
// experiments have exact ground truth.
package ecgsyn

import (
	"fmt"
	"math"

	"rpbeat/internal/rng"
)

// Sampling and ADC constants follow the MIT-BIH Arrhythmia Database format:
// 360 Hz, 11-bit samples with 200 ADU/mV gain and a mid-range baseline.
const (
	Fs       = 360.0 // sampling frequency, Hz
	Gain     = 200.0 // ADC units per millivolt
	Baseline = 1024  // ADC value for 0 mV
	ADCMax   = 2047  // 11-bit full scale
	NumLeads = 3     // leads synthesized per record
)

// Class identifies a heartbeat morphology class. The paper considers three:
// normal sinus beats, left-bundle-branch-block beats and premature
// ventricular contractions.
type Class uint8

const (
	ClassN Class = iota // normal sinus beat
	ClassL              // left bundle branch block beat
	ClassV              // premature ventricular contraction
	NumClasses
)

// String returns the MIT-BIH annotation mnemonic for the class.
func (c Class) String() string {
	switch c {
	case ClassN:
		return "N"
	case ClassL:
		return "L"
	case ClassV:
		return "V"
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// WaveKind labels which ECG wave a Gaussian bump belongs to, for fiducial
// ground-truth bookkeeping.
type WaveKind uint8

const (
	WaveP WaveKind = iota
	WaveQRS
	WaveT
)

// Bump is one Gaussian component of a beat template.
type Bump struct {
	Kind  WaveKind
	Amp   float64           // peak amplitude on lead II, millivolts
	Width float64           // Gaussian sigma, seconds
	Pos   float64           // center relative to the R peak, seconds
	Lead  [NumLeads]float64 // per-lead amplitude multipliers
}

// Template is the noise-free morphology of one beat class on all leads.
type Template struct {
	Class Class
	Bumps []Bump
}

// baseTemplates returns the population-level morphology per class.
// Amplitudes and timings are in the physiological range reported for lead II;
// leads 1 and 2 approximate lead I and V1 projections.
func baseTemplates() [NumClasses]Template {
	var t [NumClasses]Template
	t[ClassN] = Template{Class: ClassN, Bumps: []Bump{
		{WaveP, 0.15, 0.025, -0.165, [NumLeads]float64{1, 0.7, -0.4}},
		{WaveQRS, -0.08, 0.010, -0.026, [NumLeads]float64{1, 0.8, -0.5}}, // Q
		{WaveQRS, 1.10, 0.011, 0.000, [NumLeads]float64{1, 0.55, -0.35}}, // R
		{WaveQRS, -0.25, 0.012, 0.028, [NumLeads]float64{1, 0.7, -0.6}},  // S
		{WaveT, 0.35, 0.055, 0.240, [NumLeads]float64{1, 0.75, -0.3}},
	}}
	t[ClassL] = Template{Class: ClassL, Bumps: []Bump{
		{WaveP, 0.12, 0.025, -0.175, [NumLeads]float64{1, 0.7, -0.4}},
		{WaveQRS, 0.62, 0.021, -0.014, [NumLeads]float64{1, 0.6, -0.5}}, // R
		{WaveQRS, 0.55, 0.027, 0.038, [NumLeads]float64{1, 0.6, -0.5}},  // R' (notch)
		{WaveQRS, -0.14, 0.028, 0.088, [NumLeads]float64{1, 0.6, -0.4}}, // slurred S
		{WaveT, -0.28, 0.060, 0.265, [NumLeads]float64{1, 0.7, 0.5}},    // discordant T
	}}
	t[ClassV] = Template{Class: ClassV, Bumps: []Bump{
		// No P wave: ventricular ectopic focus.
		{WaveQRS, 1.40, 0.030, -0.006, [NumLeads]float64{1, 0.5, 0.8}}, // broad R
		{WaveQRS, -0.55, 0.042, 0.052, [NumLeads]float64{1, 0.6, 0.7}}, // deep S
		{WaveT, -0.45, 0.070, 0.235, [NumLeads]float64{1, 0.65, 0.6}},  // discordant T
	}}
	return t
}

// VariabilityConfig sets the dispersion knobs of the generator. The defaults
// (DefaultVariability) are calibrated so that classifier operating points
// land in the regime of the paper's Table II (NDR ≈ 90-96% at ARR ≥ 97%).
type VariabilityConfig struct {
	SubjectAmpSD   float64 // per-subject, per-bump amplitude scale sd
	SubjectWidthSD float64 // per-subject, per-bump width scale sd
	SubjectPosSD   float64 // per-subject, per-bump position shift sd (s)
	BeatAmpSD      float64 // per-beat amplitude scale sd
	BeatWidthSD    float64 // per-beat width scale sd
	BeatPosSD      float64 // per-beat position shift sd (s)
	NoiseSDMin     float64 // white noise sd lower bound (mV)
	NoiseSDMax     float64 // white noise sd upper bound (mV)
	WanderAmpMax   float64 // residual baseline wander amplitude (mV)
	MainsAmpMax    float64 // 60 Hz interference amplitude (mV)
	ArtifactProb   float64 // probability a beat carries an EMG burst
	ArtifactSD     float64 // burst extra noise sd (mV)
	AlignJitterMax int     // peak alignment error for windowed beats, samples

	// Atypical-beat model: real recordings contain borderline morphologies
	// (fusion beats, incomplete conduction blocks) that sit between
	// classes. With the probabilities below, a beat is rendered as a blend
	// of its own class template and a foreign one (normal beats drift
	// toward L/V, abnormal beats toward N), with blend weight drawn from
	// [BlendMin, BlendMax]. These rates are the primary calibration knob
	// for the classifier's operating regime.
	AtypicalProbN  float64 // P(an N beat is blended toward L or V)
	AtypicalProbAb float64 // P(an L/V beat is blended toward N)
	BlendMin       float64
	BlendMax       float64
}

// DefaultVariability returns the calibrated generator dispersion. The
// values are deliberately large: real ambulatory recordings exhibit heavy
// inter-subject morphology spread, and the calibration target is the
// classifier regime of the paper's Table II (NDR in the low-to-mid 90s at
// ARR ≥ 97%), not a trivially separable toy problem.
func DefaultVariability() VariabilityConfig {
	return VariabilityConfig{
		SubjectAmpSD:   0.28,
		SubjectWidthSD: 0.22,
		SubjectPosSD:   0.010,
		BeatAmpSD:      0.15,
		BeatWidthSD:    0.12,
		BeatPosSD:      0.005,
		NoiseSDMin:     0.02,
		NoiseSDMax:     0.10,
		WanderAmpMax:   0.12,
		MainsAmpMax:    0.03,
		ArtifactProb:   0.08,
		ArtifactSD:     0.18,
		AlignJitterMax: 3,
		AtypicalProbN:  0.13,
		AtypicalProbAb: 0.012,
		BlendMin:       0.35,
		BlendMax:       0.80,
	}
}

// Subject is one synthetic patient: per-class templates perturbed by
// subject-level variability, plus subject-level noise and rhythm parameters.
type Subject struct {
	Templates [NumClasses]Template
	NoiseSD   float64 // white noise sd, mV
	WanderAmp float64 // baseline wander amplitude, mV
	MainsAmp  float64 // powerline amplitude, mV
	MeanRR    float64 // mean RR interval, seconds
	SDRR      float64 // RR standard deviation, seconds
	Var       VariabilityConfig

	r *rng.Rand
}

// NewSubject draws a subject from the population using the given generator
// and variability configuration.
func NewSubject(r *rng.Rand, v VariabilityConfig) *Subject {
	s := &Subject{Var: v, r: r}
	base := baseTemplates()
	for c := Class(0); c < NumClasses; c++ {
		tpl := Template{Class: base[c].Class, Bumps: make([]Bump, len(base[c].Bumps))}
		copy(tpl.Bumps, base[c].Bumps)
		for i := range tpl.Bumps {
			b := &tpl.Bumps[i]
			b.Amp *= clampScale(r.NormScaled(1, v.SubjectAmpSD))
			b.Width *= clampScale(r.NormScaled(1, v.SubjectWidthSD))
			b.Pos += r.NormScaled(0, v.SubjectPosSD)
		}
		s.Templates[c] = tpl
	}
	s.NoiseSD = v.NoiseSDMin + r.Float64()*(v.NoiseSDMax-v.NoiseSDMin)
	s.WanderAmp = r.Float64() * v.WanderAmpMax
	s.MainsAmp = r.Float64() * v.MainsAmpMax
	hr := 60 + r.Float64()*35 // 60-95 bpm
	s.MeanRR = 60 / hr
	s.SDRR = 0.04 * s.MeanRR
	return s
}

// clampScale bounds a multiplicative jitter factor to the physiological
// range: wave amplitudes and widths vary a lot between subjects, but an ECG
// lead with usable signal never shrinks a wave below ~45% of nominal (that
// would be an electrode problem, not a morphology).
func clampScale(x float64) float64 {
	if x < 0.45 {
		return 0.45
	}
	if x > 2.0 {
		return 2.0
	}
	return x
}

// beatInstance returns a per-beat perturbed copy of the subject template.
func (s *Subject) beatInstance(c Class) Template {
	v := s.Var
	tpl := Template{Class: c, Bumps: make([]Bump, len(s.Templates[c].Bumps))}
	copy(tpl.Bumps, s.Templates[c].Bumps)
	for i := range tpl.Bumps {
		b := &tpl.Bumps[i]
		b.Amp *= clampScale(s.r.NormScaled(1, v.BeatAmpSD))
		b.Width *= clampScale(s.r.NormScaled(1, v.BeatWidthSD))
		b.Pos += s.r.NormScaled(0, v.BeatPosSD)
	}
	return tpl
}

// render adds the template waves, centered at time tR (seconds), into the
// float lead buffers. buf[lead][i] accumulates millivolts at sample i.
func render(tpl Template, tR float64, buf [][]float64) {
	n := len(buf[0])
	for _, b := range tpl.Bumps {
		// Gaussian support: +/- 4 sigma.
		lo := int((tR + b.Pos - 4*b.Width) * Fs)
		hi := int((tR+b.Pos+4*b.Width)*Fs) + 1
		if lo < 0 {
			lo = 0
		}
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			t := float64(i)/Fs - tR - b.Pos
			g := b.Amp * math.Exp(-t*t/(2*b.Width*b.Width))
			for l := 0; l < NumLeads; l++ {
				buf[l][i] += g * b.Lead[l]
			}
		}
	}
}

// renderLead adds the template waves for a single lead into buf.
func renderLead(tpl Template, tR float64, buf []float64, lead int) {
	n := len(buf)
	for _, b := range tpl.Bumps {
		lo := int((tR + b.Pos - 4*b.Width) * Fs)
		hi := int((tR+b.Pos+4*b.Width)*Fs) + 1
		if lo < 0 {
			lo = 0
		}
		if hi > n {
			hi = n
		}
		mul := b.Amp * b.Lead[lead]
		for i := lo; i < hi; i++ {
			t := float64(i)/Fs - tR - b.Pos
			buf[i] += mul * math.Exp(-t*t/(2*b.Width*b.Width))
		}
	}
}

// Quantize converts millivolts to 11-bit ADC counts with clipping.
func Quantize(mv float64) int32 {
	v := int32(math.Round(mv*Gain)) + Baseline
	if v < 0 {
		v = 0
	}
	if v > ADCMax {
		v = ADCMax
	}
	return v
}

// ToMillivolts converts an ADC count back to millivolts.
func ToMillivolts(adc int32) float64 {
	return float64(adc-Baseline) / Gain
}

// Beat synthesizes one windowed, single-lead heartbeat of the given class:
// `before` samples preceding the peak and `after` samples following it, at
// 360 Hz, as ADC counts. This is the fast path for assembling the large
// classification sets without rendering whole records. The window carries
// subject noise, residual baseline wander, possible EMG bursts and a small
// peak-alignment jitter (simulating the wavelet detector's localization
// error).
func (s *Subject) Beat(c Class, before, after int) []int32 {
	n := before + after
	buf := make([]float64, n)
	// Alignment jitter: the "true" R peak lands near sample `before`.
	jit := 0
	if s.Var.AlignJitterMax > 0 {
		jit = s.r.Intn(2*s.Var.AlignJitterMax+1) - s.Var.AlignJitterMax
	}
	tR := float64(before+jit) / Fs
	tpl := s.beatInstance(c)

	// Atypical (borderline) beats: blend toward a foreign class template.
	blend := 0.0
	var other Template
	switch {
	case c == ClassN && s.r.Float64() < s.Var.AtypicalProbN:
		foreign := ClassL
		if s.r.Float64() < 0.5 {
			foreign = ClassV
		}
		other = s.beatInstance(foreign)
		blend = s.Var.BlendMin + s.r.Float64()*(s.Var.BlendMax-s.Var.BlendMin)
	case c != ClassN && s.r.Float64() < s.Var.AtypicalProbAb:
		other = s.beatInstance(ClassN)
		// Abnormal beats drift less deeply toward normal than the reverse:
		// a pathological beat blended beyond ~60% normal would be clinically
		// unrecognizable, and recordings keep the achievable ARR high
		// (Fig. 5 reaches 98.5% recognition).
		hi := s.Var.BlendMax
		if hi > 0.45 {
			hi = 0.45
		}
		blend = s.Var.BlendMin + s.r.Float64()*(hi-s.Var.BlendMin)
	}
	if blend > 0 {
		own := make([]float64, n)
		foreign := make([]float64, n)
		renderLead(tpl, tR, own, 0)
		renderLead(other, tR, foreign, 0)
		for i := 0; i < n; i++ {
			buf[i] += (1-blend)*own[i] + blend*foreign[i]
		}
	} else {
		renderLead(tpl, tR, buf, 0)
	}

	// Residual baseline wander after the node's filtering stage: a slow
	// half-cosine with random phase plus a linear tilt.
	wAmp := s.WanderAmp * s.r.Float64()
	phase := s.r.Float64() * 2 * math.Pi
	tilt := s.r.NormScaled(0, s.WanderAmp/3)
	noiseSD := s.NoiseSD
	if s.r.Float64() < s.Var.ArtifactProb {
		noiseSD += s.Var.ArtifactSD * s.r.Float64()
	}
	for i := 0; i < n; i++ {
		t := float64(i) / Fs
		buf[i] += wAmp*math.Cos(2*math.Pi*0.4*t+phase) +
			tilt*(t-float64(n)/(2*Fs)) +
			s.MainsAmp*math.Sin(2*math.Pi*60*t+phase) +
			s.r.NormScaled(0, noiseSD)
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = Quantize(buf[i])
	}
	return out
}
