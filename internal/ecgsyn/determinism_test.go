package ecgsyn

import "testing"

// The load harness synthesizes each virtual patient from a deterministic
// per-patient seed; that only gives reproducible fleets if Synthesize is a
// pure function of its spec. These tests pin that contract at the record
// level (ecgsyn_test.go pins it for single beats).

// TestSynthesizeSeedDeterministic: same spec, bit-identical record —
// leads, annotations and fiducial truth alike.
func TestSynthesizeSeedDeterministic(t *testing.T) {
	spec := RecordSpec{Name: "det", Seconds: 10, Seed: 42, PVCRate: 0.2}
	a, b := Synthesize(spec), Synthesize(spec)

	for lead := range a.Leads {
		if len(a.Leads[lead]) != len(b.Leads[lead]) {
			t.Fatalf("lead %d: lengths differ (%d vs %d)", lead, len(a.Leads[lead]), len(b.Leads[lead]))
		}
		for i := range a.Leads[lead] {
			if a.Leads[lead][i] != b.Leads[lead][i] {
				t.Fatalf("lead %d sample %d: %d vs %d", lead, i, a.Leads[lead][i], b.Leads[lead][i])
			}
		}
	}
	if len(a.Ann) != len(b.Ann) {
		t.Fatalf("annotation counts differ: %d vs %d", len(a.Ann), len(b.Ann))
	}
	for i := range a.Ann {
		if a.Ann[i] != b.Ann[i] {
			t.Fatalf("annotation %d differs: %+v vs %+v", i, a.Ann[i], b.Ann[i])
		}
		if a.Truth[i] != b.Truth[i] {
			t.Fatalf("fiducials %d differ: %+v vs %+v", i, a.Truth[i], b.Truth[i])
		}
	}
}

// TestSynthesizeSeedsDistinct: different seeds give different signals —
// each virtual patient really is a different patient.
func TestSynthesizeSeedsDistinct(t *testing.T) {
	base := RecordSpec{Name: "d", Seconds: 10, PVCRate: 0.2}
	specA, specB := base, base
	specA.Seed, specB.Seed = 1, 2
	a, b := Synthesize(specA), Synthesize(specB)

	if len(a.Leads[0]) == len(b.Leads[0]) {
		same := true
		for i := range a.Leads[0] {
			if a.Leads[0][i] != b.Leads[0][i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("seeds 1 and 2 synthesized bit-identical leads")
		}
	}
}
