package ecgsyn

import (
	"math"
	"testing"

	"rpbeat/internal/rng"
)

func TestClassString(t *testing.T) {
	if ClassN.String() != "N" || ClassL.String() != "L" || ClassV.String() != "V" {
		t.Fatal("class mnemonics wrong")
	}
	if Class(9).String() == "" {
		t.Fatal("unknown class should still format")
	}
}

func TestQuantizeRoundTrip(t *testing.T) {
	for _, mv := range []float64{0, 0.5, -0.5, 1.0, -1.0, 2.5} {
		adc := Quantize(mv)
		back := ToMillivolts(adc)
		if math.Abs(back-mv) > 1.0/Gain {
			t.Fatalf("mv %v -> adc %d -> %v: error too large", mv, adc, back)
		}
	}
}

func TestQuantizeClips(t *testing.T) {
	if Quantize(100) != ADCMax {
		t.Fatalf("positive clip: %d", Quantize(100))
	}
	if Quantize(-100) != 0 {
		t.Fatalf("negative clip: %d", Quantize(-100))
	}
}

func TestBeatWindowLength(t *testing.T) {
	s := NewSubject(rng.New(1), DefaultVariability())
	b := s.Beat(ClassN, 100, 100)
	if len(b) != 200 {
		t.Fatalf("beat window length %d, want 200", len(b))
	}
}

func TestBeatPeakNearCenter(t *testing.T) {
	v := DefaultVariability()
	v.NoiseSDMin, v.NoiseSDMax = 0.001, 0.002 // nearly clean
	v.WanderAmpMax, v.MainsAmpMax, v.ArtifactProb = 0, 0, 0
	s := NewSubject(rng.New(2), v)
	for i := 0; i < 20; i++ {
		b := s.Beat(ClassN, 100, 100)
		// find max |deviation from baseline|
		best, bestAbs := 0, int32(0)
		for j, x := range b {
			d := x - Baseline
			if d < 0 {
				d = -d
			}
			if d > bestAbs {
				bestAbs, best = d, j
			}
		}
		if best < 90 || best > 110 {
			t.Fatalf("beat %d: peak at sample %d, want near 100", i, best)
		}
	}
}

func TestBeatClassesDiffer(t *testing.T) {
	v := DefaultVariability()
	v.NoiseSDMin, v.NoiseSDMax = 0.001, 0.002
	v.WanderAmpMax, v.MainsAmpMax, v.ArtifactProb = 0, 0, 0
	s := NewSubject(rng.New(3), v)
	mean := func(c Class) []float64 {
		acc := make([]float64, 200)
		const reps = 30
		for i := 0; i < reps; i++ {
			b := s.Beat(c, 100, 100)
			for j, x := range b {
				acc[j] += ToMillivolts(x) / reps
			}
		}
		return acc
	}
	mN, mL, mV := mean(ClassN), mean(ClassL), mean(ClassV)
	dist := func(a, b []float64) float64 {
		var d float64
		for i := range a {
			d += (a[i] - b[i]) * (a[i] - b[i])
		}
		return math.Sqrt(d)
	}
	if dist(mN, mV) < 1.0 {
		t.Fatalf("N and V templates too close: %v", dist(mN, mV))
	}
	if dist(mN, mL) < 1.0 {
		t.Fatalf("N and L templates too close: %v", dist(mN, mL))
	}
	if dist(mL, mV) < 0.5 {
		t.Fatalf("L and V templates too close: %v", dist(mL, mV))
	}
}

func TestVBeatHasNoPWave(t *testing.T) {
	s := NewSubject(rng.New(4), DefaultVariability())
	for _, b := range s.Templates[ClassV].Bumps {
		if b.Kind == WaveP {
			t.Fatal("PVC template must not contain a P wave")
		}
	}
}

func TestSubjectsDiffer(t *testing.T) {
	a := NewSubject(rng.New(10), DefaultVariability())
	b := NewSubject(rng.New(11), DefaultVariability())
	if a.Templates[ClassN].Bumps[2].Amp == b.Templates[ClassN].Bumps[2].Amp {
		t.Fatal("two subjects drew identical R amplitude")
	}
}

func TestSubjectDeterministic(t *testing.T) {
	a := NewSubject(rng.New(10), DefaultVariability())
	b := NewSubject(rng.New(10), DefaultVariability())
	for c := Class(0); c < NumClasses; c++ {
		for i := range a.Templates[c].Bumps {
			if a.Templates[c].Bumps[i] != b.Templates[c].Bumps[i] {
				t.Fatal("same seed produced different subjects")
			}
		}
	}
}

func TestSynthesizeRecordBasics(t *testing.T) {
	rec := Synthesize(RecordSpec{Name: "t100", Seconds: 30, PVCRate: 0.1, Seed: 5})
	if rec.Duration() < 29.9 || rec.Duration() > 30.1 {
		t.Fatalf("duration %v, want 30 s", rec.Duration())
	}
	if len(rec.Ann) < 25 || len(rec.Ann) > 55 {
		t.Fatalf("got %d beats in 30 s, want a physiological count", len(rec.Ann))
	}
	if len(rec.Truth) != len(rec.Ann) {
		t.Fatalf("fiducials not parallel to annotations: %d vs %d", len(rec.Truth), len(rec.Ann))
	}
	for l := 0; l < NumLeads; l++ {
		if len(rec.Leads[l]) != len(rec.Leads[0]) {
			t.Fatal("leads have different lengths")
		}
	}
	// Annotations strictly increasing.
	for i := 1; i < len(rec.Ann); i++ {
		if rec.Ann[i].Sample <= rec.Ann[i-1].Sample {
			t.Fatalf("annotations not increasing at %d", i)
		}
	}
}

func TestSynthesizePVCRate(t *testing.T) {
	rec := Synthesize(RecordSpec{Name: "t200", Seconds: 300, PVCRate: 0.15, Seed: 6})
	var v, total int
	for _, a := range rec.Ann {
		total++
		if a.Class == ClassV {
			v++
		}
	}
	frac := float64(v) / float64(total)
	if frac < 0.07 || frac > 0.25 {
		t.Fatalf("PVC fraction %.3f, want near 0.15", frac)
	}
}

func TestSynthesizeLBBBRecordUsesLBeats(t *testing.T) {
	rec := Synthesize(RecordSpec{Name: "t109", Seconds: 60, LBBB: true, Seed: 7})
	for i, a := range rec.Ann {
		if a.Class == ClassN {
			t.Fatalf("beat %d is N in an LBBB record", i)
		}
	}
}

func TestRecordPeaksAlignWithAnnotations(t *testing.T) {
	var v = DefaultVariability()
	v.NoiseSDMin, v.NoiseSDMax = 0.001, 0.002
	v.WanderAmpMax, v.MainsAmpMax, v.ArtifactProb = 0, 0, 0
	rec := Synthesize(RecordSpec{Name: "tq", Seconds: 20, Seed: 8, Var: &v})
	for _, a := range rec.Ann {
		if a.Sample < 40 || a.Sample > len(rec.Leads[0])-40 {
			continue
		}
		// The annotated sample should be within a few samples of the local
		// extremum of lead 0.
		best, bestAbs := a.Sample, int32(-1)
		for j := a.Sample - 15; j <= a.Sample+15; j++ {
			d := rec.Leads[0][j] - Baseline
			if d < 0 {
				d = -d
			}
			if d > bestAbs {
				bestAbs, best = d, j
			}
		}
		if diff := best - a.Sample; diff < -5 || diff > 5 {
			t.Fatalf("annotation at %d but extremum at %d", a.Sample, best)
		}
	}
}

func TestCompensatoryPauseAfterPVC(t *testing.T) {
	rec := Synthesize(RecordSpec{Name: "tp", Seconds: 300, PVCRate: 0.10, Seed: 9})
	// Find PVCs with a neighbor on both sides and check RR(after) > RR(before).
	checked := 0
	for i := 1; i < len(rec.Ann)-1; i++ {
		if rec.Ann[i].Class != ClassV {
			continue
		}
		before := rec.Ann[i].Sample - rec.Ann[i-1].Sample
		after := rec.Ann[i+1].Sample - rec.Ann[i].Sample
		if after <= before {
			t.Fatalf("PVC %d: pause %d not longer than coupling %d", i, after, before)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no PVCs generated")
	}
}

func TestFiducialOrdering(t *testing.T) {
	rec := Synthesize(RecordSpec{Name: "tf", Seconds: 60, PVCRate: 0.08, Seed: 10})
	for i, f := range rec.Truth {
		if f.QRSOn >= f.RPeak || f.RPeak >= f.QRSOff {
			t.Fatalf("beat %d: QRS fiducials out of order: %+v", i, f)
		}
		if f.POn != -1 && !(f.POn < f.PPeak && f.PPeak < f.POff && f.POff <= f.QRSOn+3) {
			t.Fatalf("beat %d: P fiducials out of order: %+v", i, f)
		}
		if f.TOn != -1 && !(f.TOn < f.TPeak && f.TPeak < f.TOff && f.TOn >= f.QRSOn) {
			t.Fatalf("beat %d: T fiducials out of order: %+v", i, f)
		}
		if rec.Ann[i].Class == ClassV && f.POn != -1 {
			t.Fatalf("beat %d: PVC has P-wave fiducials", i)
		}
	}
}

func TestADCRangeRespected(t *testing.T) {
	rec := Synthesize(RecordSpec{Name: "tr", Seconds: 30, Seed: 11})
	for l := 0; l < NumLeads; l++ {
		for i, v := range rec.Leads[l] {
			if v < 0 || v > ADCMax {
				t.Fatalf("lead %d sample %d = %d outside 11-bit range", l, i, v)
			}
		}
	}
}

func BenchmarkBeat(b *testing.B) {
	s := NewSubject(rng.New(1), DefaultVariability())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Beat(ClassN, 100, 100)
	}
}

func BenchmarkSynthesize30s(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Synthesize(RecordSpec{Name: "b", Seconds: 30, PVCRate: 0.05, Seed: uint64(i)})
	}
}
