package ecgsyn

import (
	"math"

	"rpbeat/internal/rng"
)

// Annotation marks one heartbeat in a record: the R-peak sample index and the
// beat class. It mirrors a MIT-BIH beat annotation.
type Annotation struct {
	Sample int
	Class  Class
}

// Fiducials holds the ground-truth wave boundaries of one beat, as sample
// indices into the record. A value of -1 means the wave is absent (e.g. no P
// wave in a PVC).
type Fiducials struct {
	POn, PPeak, POff     int
	QRSOn, RPeak, QRSOff int
	TOn, TPeak, TOff     int
}

// NumFiducialPoints is the number of fiducial points reported per beat by the
// delineation stage (3 waves x onset/peak/end), used for radio payload
// accounting in the energy model.
const NumFiducialPoints = 9

// Record is a synthesized multi-lead ECG recording with beat annotations and
// exact fiducial ground truth.
type Record struct {
	Name  string
	Fs    float64
	Leads [NumLeads][]int32 // ADC counts
	Ann   []Annotation
	Truth []Fiducials // parallel to Ann
}

// Duration returns the record length in seconds.
func (rec *Record) Duration() float64 {
	return float64(len(rec.Leads[0])) / rec.Fs
}

// LeadMillivolts converts one lead to millivolts.
func (rec *Record) LeadMillivolts(lead int) []float64 {
	src := rec.Leads[lead]
	out := make([]float64, len(src))
	for i, v := range src {
		out[i] = ToMillivolts(v)
	}
	return out
}

// RecordSpec describes a record to synthesize.
type RecordSpec struct {
	Name    string
	Seconds float64
	// PVCRate is the fraction of beats that are premature ventricular
	// contractions (0 for none).
	PVCRate float64
	// LBBB marks the subject as having a left bundle branch block: all
	// supraventricular beats take the L morphology instead of N.
	LBBB bool
	Seed uint64
	// Var overrides the variability configuration; zero value means
	// DefaultVariability.
	Var *VariabilityConfig
}

// Synthesize renders a full record per spec: rhythm generation (RR model,
// PVC prematurity with compensatory pause), per-beat morphology, noise on
// every lead and ADC quantization.
func Synthesize(spec RecordSpec) *Record {
	v := DefaultVariability()
	if spec.Var != nil {
		v = *spec.Var
	}
	r := rng.New(spec.Seed)
	subj := NewSubject(r.Split(), v)
	n := int(spec.Seconds * Fs)
	rec := &Record{Name: spec.Name, Fs: Fs}

	// --- rhythm: list of (time, class) beat events ---
	type event struct {
		t float64
		c Class
	}
	var events []event
	baseClass := ClassN
	if spec.LBBB {
		baseClass = ClassL
	}
	rrNoise := r.Split()
	t := 0.4 + 0.2*rrNoise.Float64() // first beat offset
	// Respiratory sinus arrhythmia: slow modulation of RR.
	respPhase := rrNoise.Float64() * 2 * math.Pi
	cur := baseClass
	for t < spec.Seconds-0.6 {
		events = append(events, event{t, cur})
		// Class of the next beat: a PVC never directly follows a PVC here
		// (couplets exist clinically but are not needed for the experiments).
		next := baseClass
		if cur != ClassV && rrNoise.Float64() < spec.PVCRate {
			next = ClassV
		}
		resp := 1 + 0.05*math.Sin(2*math.Pi*0.25*t+respPhase)
		rr := subj.MeanRR*resp + rrNoise.NormScaled(0, subj.SDRR)
		if rr < 0.3 {
			rr = 0.3
		}
		switch {
		case next == ClassV:
			rr *= 0.65 // prematurity: the ectopic beat fires early
		case cur == ClassV:
			// Compensatory pause: sinus node keeps its phase, so the beat
			// after the PVC lands a full cycle after the *expected* beat.
			rr = 2*subj.MeanRR - 0.65*subj.MeanRR
		}
		t += rr
		cur = next
	}

	// --- render ---
	var buf [NumLeads][]float64
	for l := 0; l < NumLeads; l++ {
		buf[l] = make([]float64, n)
	}
	for _, ev := range events {
		tpl := subj.beatInstance(ev.c)
		render(tpl, ev.t, buf[:])
		rec.Ann = append(rec.Ann, Annotation{Sample: int(ev.t*Fs + 0.5), Class: ev.c})
		rec.Truth = append(rec.Truth, fiducialsOf(tpl, ev.t))
	}

	// --- noise per lead ---
	noise := r.Split()
	for l := 0; l < NumLeads; l++ {
		phase1 := noise.Float64() * 2 * math.Pi
		phase2 := noise.Float64() * 2 * math.Pi
		phaseMains := noise.Float64() * 2 * math.Pi
		for i := 0; i < n; i++ {
			ts := float64(i) / Fs
			buf[l][i] += subj.WanderAmp*(math.Sin(2*math.Pi*0.15*ts+phase1)+
				0.5*math.Sin(2*math.Pi*0.31*ts+phase2)) +
				subj.MainsAmp*math.Sin(2*math.Pi*60*ts+phaseMains) +
				noise.NormScaled(0, subj.NoiseSD)
		}
	}

	for l := 0; l < NumLeads; l++ {
		rec.Leads[l] = make([]int32, n)
		for i := 0; i < n; i++ {
			rec.Leads[l][i] = Quantize(buf[l][i])
		}
	}
	return rec
}

// fiducialsOf derives ground-truth wave boundaries from a rendered template.
// Onset/end are taken at ±2.5 sigma of the first/last bump of each wave —
// the point where the Gaussian falls to ~4% of its peak, matching what a
// human annotator would mark on the synthetic trace.
func fiducialsOf(tpl Template, tR float64) Fiducials {
	f := Fiducials{POn: -1, PPeak: -1, POff: -1, TOn: -1, TPeak: -1, TOff: -1}
	toSample := func(sec float64) int { return int((tR+sec)*Fs + 0.5) }

	var qrsOn, qrsOff float64
	qrsOn, qrsOff = math.Inf(1), math.Inf(-1)
	var rPos, rAmp float64
	for _, b := range tpl.Bumps {
		switch b.Kind {
		case WaveP:
			f.POn = toSample(b.Pos - 2.5*b.Width)
			f.PPeak = toSample(b.Pos)
			f.POff = toSample(b.Pos + 2.5*b.Width)
		case WaveQRS:
			if on := b.Pos - 2.5*b.Width; on < qrsOn {
				qrsOn = on
			}
			if off := b.Pos + 2.5*b.Width; off > qrsOff {
				qrsOff = off
			}
			if math.Abs(b.Amp) > math.Abs(rAmp) {
				rAmp, rPos = b.Amp, b.Pos
			}
		case WaveT:
			f.TOn = toSample(b.Pos - 2.5*b.Width)
			f.TPeak = toSample(b.Pos)
			f.TOff = toSample(b.Pos + 2.5*b.Width)
		}
	}
	f.QRSOn = toSample(qrsOn)
	f.RPeak = toSample(rPos)
	f.QRSOff = toSample(qrsOff)
	return f
}
