package platform

import (
	"strings"
	"testing"
)

func TestOpCountAlgebra(t *testing.T) {
	a := OpCount{Add: 1, Mul: 2, Load: 3}
	b := OpCount{Add: 10, Store: 5}
	s := a.Plus(b)
	if s.Add != 11 || s.Mul != 2 || s.Load != 3 || s.Store != 5 {
		t.Fatalf("plus: %+v", s)
	}
	d := a.Times(3)
	if d.Add != 3 || d.Mul != 6 || d.Load != 9 {
		t.Fatalf("times: %+v", d)
	}
	if a.Total() != 6 {
		t.Fatalf("total: %d", a.Total())
	}
}

func TestCycleModel(t *testing.T) {
	m := Icyflex()
	if m.ClockHz != 6e6 {
		t.Fatalf("clock %v", m.ClockHz)
	}
	c := m.Cycles(OpCount{Add: 10, Div: 1, Load: 5})
	if c != 10+35+10 {
		t.Fatalf("cycles = %v", c)
	}
	duty := m.DutyCycle(OpCount{Add: 6_000_000})
	if duty != 1.0 {
		t.Fatalf("duty = %v", duty)
	}
}

func TestClassifierOpsTiny(t *testing.T) {
	// The paper's headline: the classifier itself must cost a negligible
	// fraction of the 6 MHz budget (< 0.01 duty).
	m := Icyflex()
	duty := m.DutyCycle(ClassifierOps(8, 50, 1.2))
	if duty >= 0.01 {
		t.Fatalf("classifier duty = %v, want < 0.01", duty)
	}
	if duty <= 0 {
		t.Fatal("classifier duty must be positive")
	}
}

func TestStageOrdering(t *testing.T) {
	// Structural property of Table III: classifier << filter+peak <
	// delineation side.
	m := Icyflex()
	cls := m.DutyCycle(ClassifierOps(8, 50, 1.2))
	f1 := m.DutyCycle(FilterOps(360).Plus(PeakOps(360)))
	d3 := m.DutyCycle(FilterOps(360).Times(3).Plus(PeakOps(360)).Plus(DelineationOps(360, 3, 1.2)))
	if !(cls < f1/10) {
		t.Fatalf("classifier (%.4f) not an order below front end (%.4f)", cls, f1)
	}
	if !(d3 > 2*f1) {
		t.Fatalf("delineation side (%.4f) not dominant over front end (%.4f)", d3, f1)
	}
}

func TestTableIIIShape(t *testing.T) {
	rows := TableIII(SystemParams{
		Fs: 360, BeatsPerSec: 1.2, ActivationRate: 0.22,
		K: 8, D: 50, ClassifierData: 784, Leads: 3,
		Model: Icyflex(),
	})
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	cls, sub1, sub2, sys3 := rows[0], rows[1], rows[2], rows[3]
	if cls.Duty >= 0.01 {
		t.Fatalf("classifier duty %v", cls.Duty)
	}
	if !(sub1.Duty > cls.Duty && sub2.Duty > sub1.Duty) {
		t.Fatalf("duty ordering broken: %v %v %v", cls.Duty, sub1.Duty, sub2.Duty)
	}
	// The headline claim: selective activation makes system (3) much
	// cheaper than always-on delineation.
	reduction := 1 - sys3.Duty/sub2.Duty
	if reduction < 0.35 {
		t.Fatalf("duty reduction %.2f, want the >= 35%% regime of the paper's 63%%", reduction)
	}
	// Code sizes: classifier small, totals additive like the paper's table.
	if cls.CodeBytes > 2*1024 {
		t.Fatalf("classifier footprint %d B, want <= 2 KB", cls.CodeBytes)
	}
	if sys3.CodeBytes != sub1.CodeBytes+sub2.CodeBytes {
		t.Fatal("system(3) code must be the sum of the two sub-systems")
	}
	if !FitsRAM(sys3.CodeBytes) {
		t.Fatalf("system(3) %d B exceeds the 96 KB SoC budget", sys3.CodeBytes)
	}
}

func TestSystem3DutyDecomposition(t *testing.T) {
	// duty(3) must equal duty(1) + rate * duty(delineation side incl. the
	// two extra filtered leads); verify against an independent computation.
	p := SystemParams{
		Fs: 360, BeatsPerSec: 1.2, ActivationRate: 0.25,
		K: 8, D: 50, ClassifierData: 784, Leads: 3, Model: Icyflex(),
	}
	rows := TableIII(p)
	m := p.Model
	extra := FilterOps(360).Times(2).Plus(DelineationOps(360, 3, 1.2))
	want := rows[1].Duty + 0.25*m.DutyCycle(extra)
	if diff := rows[3].Duty - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("system(3) duty %v, want %v", rows[3].Duty, want)
	}
}

func TestActivationRateMonotone(t *testing.T) {
	base := SystemParams{
		Fs: 360, BeatsPerSec: 1.2,
		K: 8, D: 50, ClassifierData: 784, Leads: 3, Model: Icyflex(),
	}
	prev := -1.0
	for _, rate := range []float64{0.05, 0.2, 0.5, 0.8, 1.0} {
		p := base
		p.ActivationRate = rate
		rows := TableIII(p)
		if rows[3].Duty <= prev {
			t.Fatalf("system(3) duty not increasing with activation rate at %v", rate)
		}
		prev = rows[3].Duty
	}
	// At rate 1.0 the proposed system must cost at least as much as the
	// always-on delineator (it also runs the classifier).
	p := base
	p.ActivationRate = 1.0
	rows := TableIII(p)
	if rows[3].Duty < rows[2].Duty {
		t.Fatalf("at 100%% activation, system(3) (%.4f) cheaper than always-on (%.4f)",
			rows[3].Duty, rows[2].Duty)
	}
}

func TestStageReportString(t *testing.T) {
	r := StageReport{Name: "RP-classifier", CodeBytes: 1644, Duty: 0.004}
	s := r.String()
	if !strings.Contains(s, "< 0.01") {
		t.Fatalf("tiny duty should print as < 0.01: %q", s)
	}
	r.Duty = 0.12
	if !strings.Contains(r.String(), "0.12") {
		t.Fatalf("duty formatting: %q", r.String())
	}
}

func TestScaleFracRounds(t *testing.T) {
	o := scaleFrac(OpCount{Add: 10}, 0.25)
	if o.Add != 3 { // 2.5 rounds to 3
		t.Fatalf("scaled add = %d", o.Add)
	}
}

func TestFitsRAM(t *testing.T) {
	if !FitsRAM(96 * 1024) {
		t.Fatal("exactly 96 KB should fit")
	}
	if FitsRAM(96*1024 + 1) {
		t.Fatal("over budget should not fit")
	}
}
