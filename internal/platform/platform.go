// Package platform models execution of the WBSN pipeline on the IcyHeart
// SoC (icyflex-class low-power core, 6 MHz clock, 96 KB RAM) to reproduce
// the run-time and memory evaluation of Table III.
//
// Substitution note (see DESIGN.md): the paper measures real silicon; this
// repository cannot, so each DSP stage is costed with an explicit
// instruction-level model — abstract RISC operation counts per sample/beat,
// derived from the structure of the embedded algorithms (naive O(L)
// morphology as fits a node without dynamic allocation, à trous filter
// banks, packed-matrix projection), multiplied by a per-operation cycle
// table for a single-issue integer core. Duty cycle = cycles consumed per
// second of signal / clock rate. Code sizes combine modeled instruction
// footprints (documented constants) with the *actual* table sizes of the
// trained classifier (packed projection matrix + MF tables).
package platform

import (
	"fmt"
)

// OpCount tallies abstract RISC operations.
type OpCount struct {
	Add    uint64 // integer add/sub/compare
	Mul    uint64
	Div    uint64
	Load   uint64
	Store  uint64
	Branch uint64
	Shift  uint64
}

// Plus returns o + p.
func (o OpCount) Plus(p OpCount) OpCount {
	return OpCount{
		Add:    o.Add + p.Add,
		Mul:    o.Mul + p.Mul,
		Div:    o.Div + p.Div,
		Load:   o.Load + p.Load,
		Store:  o.Store + p.Store,
		Branch: o.Branch + p.Branch,
		Shift:  o.Shift + p.Shift,
	}
}

// Times returns o scaled by an integer factor.
func (o OpCount) Times(n uint64) OpCount {
	return OpCount{
		Add:    o.Add * n,
		Mul:    o.Mul * n,
		Div:    o.Div * n,
		Load:   o.Load * n,
		Store:  o.Store * n,
		Branch: o.Branch * n,
		Shift:  o.Shift * n,
	}
}

// Total returns the total operation count.
func (o OpCount) Total() uint64 {
	return o.Add + o.Mul + o.Div + o.Load + o.Store + o.Branch + o.Shift
}

// CycleModel assigns per-operation cycle costs for a target core.
type CycleModel struct {
	Name    string
	ClockHz float64
	Add     float64
	Mul     float64
	Div     float64
	Load    float64
	Store   float64
	Branch  float64
	Shift   float64
}

// Icyflex returns the cost table for the IcyHeart's icyflex-class core:
// single-cycle ALU and MAC, two-cycle memory accesses, iterative division,
// 6 MHz clock.
func Icyflex() CycleModel {
	return CycleModel{
		Name:    "icyflex@6MHz",
		ClockHz: 6e6,
		Add:     1, Mul: 1, Div: 35,
		Load: 2, Store: 2, Branch: 2, Shift: 1,
	}
}

// Cycles converts an operation count to core cycles.
func (c CycleModel) Cycles(o OpCount) float64 {
	return float64(o.Add)*c.Add + float64(o.Mul)*c.Mul + float64(o.Div)*c.Div +
		float64(o.Load)*c.Load + float64(o.Store)*c.Store +
		float64(o.Branch)*c.Branch + float64(o.Shift)*c.Shift
}

// DutyCycle is the fraction of the core's cycles consumed by opsPerSecond.
func (c CycleModel) DutyCycle(opsPerSecond OpCount) float64 {
	return c.Cycles(opsPerSecond) / c.ClockHz
}

// --- per-stage operation models (ops per second of signal per lead unless
// noted). The formulas mirror the embedded implementations: morphology is
// the naive O(L) sliding min/max (no dynamic structures on the node), the
// wavelet bank is the 4-tap/2-tap à trous pair, the classifier is the
// packed-projection + linear-MF integer pipeline of internal/fixp. ---

// morphPassOps is one erosion or dilation pass with a structuring element of
// L samples: per output sample, L loads and L-1 comparisons plus loop
// overhead.
func morphPassOps(fs float64, l int) OpCount {
	perSample := OpCount{
		Load:   uint64(l) + 1,
		Add:    uint64(l), // comparisons + index arithmetic
		Branch: uint64(l),
		Store:  1,
	}
	return perSample.Times(uint64(fs))
}

// FilterOps models the morphological front end of one lead for one second:
// noise suppression (opening-closing and closing-opening with a 3-sample
// element: 8 passes) and baseline estimation/removal (opening with 0.2 s,
// closing with 0.3 s elements: 4 passes, plus the subtraction pass).
func FilterOps(fs float64) OpCount {
	small := 3
	openL := int(0.2 * fs)
	closeL := int(0.3 * fs)
	ops := OpCount{}
	for i := 0; i < 8; i++ {
		ops = ops.Plus(morphPassOps(fs, small))
	}
	ops = ops.Plus(morphPassOps(fs, openL).Times(2))  // opening: erode+dilate
	ops = ops.Plus(morphPassOps(fs, closeL).Times(2)) // closing: dilate+erode
	// averaging and subtraction passes
	ops = ops.Plus(OpCount{Add: 2, Load: 2, Store: 1, Shift: 1}.Times(uint64(fs)))
	ops = ops.Plus(OpCount{Add: 1, Load: 2, Store: 1}.Times(uint64(fs)))
	return ops
}

// PeakOps models the 4-scale à trous decomposition plus modulus-maxima
// bookkeeping for one second of one lead.
func PeakOps(fs float64) OpCount {
	perScalePerSample := OpCount{
		// lowpass h = [1 3 3 1]/8: 4 loads, 3 adds, 2 shifts (x3 = x<<1+x), 1 store
		// highpass g = 2[1 -1]: 2 loads, 1 add, 1 shift, 1 store
		Load: 6, Add: 4, Shift: 3, Store: 2,
	}
	ops := perScalePerSample.Times(uint64(4 * fs))
	// extrema scan + thresholds on three scales
	ops = ops.Plus(OpCount{Load: 3, Add: 4, Branch: 3}.Times(uint64(3 * fs)))
	return ops
}

// ClassifierOps models the integer RP+NFC pipeline for beatsPerSec beats:
// packed-matrix projection (2-bit decode + add per element), linear MF
// evaluation, shift-normalized fuzzification and defuzzification.
func ClassifierOps(k, d int, beatsPerSec float64) OpCount {
	perBeat := OpCount{}
	// projection: per matrix element, decode (load amortized 1/4, shift,
	// mask, branch) and conditional add
	el := uint64(k * d)
	perBeat = perBeat.Plus(OpCount{
		Load:   el / 4,
		Shift:  el,
		Add:    el, // mask+add
		Branch: el,
	})
	// MF evaluation: per (k, class): |d| compare chain + slope multiply
	mf := uint64(k * 3)
	perBeat = perBeat.Plus(OpCount{Load: mf * 2, Add: mf * 3, Mul: mf, Shift: mf, Branch: mf * 2})
	// fuzzification: per coefficient, 3 multiplies + common shift
	perBeat = perBeat.Plus(OpCount{Mul: uint64(k * 3), Shift: uint64(k * 6), Add: uint64(k * 3)}.Plus(OpCount{Branch: uint64(k)}))
	// defuzzification: compares and one 32x16 cross-multiply pair
	perBeat = perBeat.Plus(OpCount{Add: 8, Mul: 2, Shift: 2, Branch: 4})
	// one beat per beatsPerSec: scale by 1e3 to keep integer precision
	return scaleFrac(perBeat, beatsPerSec)
}

// DelineationOps models multi-lead MMD delineation for one second,
// following the reference embedded implementation: each lead is transformed
// with MMD at three wave scales (QRS ~21, P ~41, T ~73 samples of flat
// structuring element, naive O(L) morphology), the per-scale responses are
// fused across leads, and per-beat fiducial searches run on the fused
// transforms.
func DelineationOps(fs float64, leads int, beatsPerSec float64) OpCount {
	ops := OpCount{}
	// Per-lead MMD at three scales: a dilation and an erosion pass each.
	for _, l := range []int{21, 41, 73} {
		ops = ops.Plus(morphPassOps(fs, l).Times(2 * uint64(leads)))
	}
	// MMD combination per scale per lead: 2 loads, 3 adds, 1 div, 1 store.
	ops = ops.Plus(OpCount{Load: 2, Add: 3, Div: 1, Store: 1}.Times(uint64(3*leads) * uint64(fs)))
	// Cross-lead fusion of the three scale responses.
	fusion := OpCount{Mul: uint64(leads), Add: uint64(leads) + 4, Load: uint64(leads), Store: 1}
	ops = ops.Plus(fusion.Times(uint64(3 * fs)))
	// Per-beat searches: 9 fiducials x ~0.25 s windows on the fused MMDs.
	window := uint64(0.25 * fs)
	perBeat := OpCount{Load: 9 * window, Add: 9 * window, Branch: 9 * window}
	ops = ops.Plus(scaleFrac(perBeat, beatsPerSec))
	return ops
}

// scaleFrac scales an OpCount by a fractional factor (rounding each bucket).
func scaleFrac(o OpCount, f float64) OpCount {
	r := func(v uint64) uint64 { return uint64(float64(v)*f + 0.5) }
	return OpCount{
		Add: r(o.Add), Mul: r(o.Mul), Div: r(o.Div),
		Load: r(o.Load), Store: r(o.Store), Branch: r(o.Branch), Shift: r(o.Shift),
	}
}

// --- code size model ---

// Modeled code footprints (bytes) of each embedded stage. These are
// documented model constants — instruction-count estimates for an icyflex-
// class ISA — not measurements; they reproduce the code-size accounting of
// Table III, where the paper reports its standalone binaries. Classifier
// *data* (projection matrix + MF tables) is measured from the actual trained
// artifact and added separately.
const (
	CodeClassifier  = 860   // projection loop, MF eval, fuzzify, defuzzify
	CodeFilter      = 11200 // morphology kernels, buffers management
	CodePeak        = 17400 // à trous bank, maxima pairing, search-back
	CodeDelineation = 17700 // MMD kernels, fiducial searches, lead fusion
)

// StageReport is one row of the Table III reproduction.
type StageReport struct {
	Name      string
	CodeBytes int     // code + constant tables
	Duty      float64 // fraction of the 6 MHz budget
}

// String formats the row like the paper's table.
func (s StageReport) String() string {
	duty := fmt.Sprintf("%.2f", s.Duty)
	if s.Duty < 0.01 {
		duty = "< 0.01"
	}
	return fmt.Sprintf("%-32s %8.2f KB   %s", s.Name, float64(s.CodeBytes)/1024, duty)
}

// SystemParams feeds the Table III computation.
type SystemParams struct {
	Fs             float64 // sampling rate (360)
	BeatsPerSec    float64 // average heart rate in beats/s (~1.2 on MIT-BIH)
	ActivationRate float64 // fraction of beats flagged abnormal by the classifier
	K, D           int     // classifier geometry (8 x 50 in the paper's Table III)
	ClassifierData int     // measured bytes of packed matrix + MF tables
	Leads          int     // delineation leads (3)
	Model          CycleModel
}

// TableIII computes the four rows of the paper's Table III under the cost
// model: the RP classifier alone, sub-system (1) = classifier + 1-lead
// filtering + peak detection, sub-system (2) = always-on 3-lead delineation
// (with its own filtering), and the proposed system (3) = sub-system (1)
// plus delineation activated only on abnormal beats.
func TableIII(p SystemParams) []StageReport {
	m := p.Model
	clsOps := ClassifierOps(p.K, p.D, p.BeatsPerSec)
	filter1 := FilterOps(p.Fs)
	peak := PeakOps(p.Fs)
	delin := DelineationOps(p.Fs, p.Leads, p.BeatsPerSec)
	filter3 := filter1.Times(uint64(p.Leads))

	dutyCls := m.DutyCycle(clsOps)
	dutySub1 := m.DutyCycle(clsOps.Plus(filter1).Plus(peak))
	dutySub2 := m.DutyCycle(filter3.Plus(peak).Plus(delin))
	// System (3): sub-system (1) always on; the delineation side (including
	// the two extra filtered leads) only runs for the activated fraction.
	extra := filter1.Times(uint64(p.Leads - 1)).Plus(delin)
	dutySys3 := dutySub1 + p.ActivationRate*m.DutyCycle(extra)

	codeSub1 := CodeClassifier + p.ClassifierData + CodeFilter + CodePeak
	codeSub2 := CodeFilter + CodePeak + CodeDelineation
	return []StageReport{
		{Name: "RP-classifier", CodeBytes: CodeClassifier + p.ClassifierData, Duty: dutyCls},
		{Name: "RP + filtering + peak detection (1)", CodeBytes: codeSub1, Duty: dutySub1},
		{Name: "Multi-lead delineation (2)", CodeBytes: codeSub2, Duty: dutySub2},
		{Name: "Proposed system (3)", CodeBytes: codeSub1 + codeSub2, Duty: dutySys3},
	}
}

// RAMBudgetBytes is the IcyHeart's embedded RAM (96 KB).
const RAMBudgetBytes = 96 * 1024

// FitsRAM reports whether the given total footprint fits the SoC memory.
func FitsRAM(bytes int) bool { return bytes <= RAMBudgetBytes }
