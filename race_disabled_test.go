//go:build !race

package rpbeat

const raceEnabled = false
