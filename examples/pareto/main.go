// Pareto: the membership-function shape study of Figures 4 and 5.
//
// Trains one WBSN-configured classifier, quantizes it with the three MF
// shapes (float gaussian reference, the paper's 4-segment linearization and
// the simpler triangular interpolation), sweeps the defuzzification
// coefficient, and prints the NDR/ARR Pareto fronts as an ASCII chart plus
// the numeric series.
//
// Run with: go run ./examples/pareto
package main

import (
	"fmt"
	"log"
	"strings"

	"rpbeat/internal/experiments"
	"rpbeat/internal/metrics"
)

func main() {
	log.SetFlags(0)

	fmt.Println("Figure 4 — membership shapes (grade at distance x from the center):")
	pts := experiments.Figure4()
	for _, p := range pts {
		if int(p.X*10)%5 != 0 { // print every 0.5 sigma
			continue
		}
		fmt.Printf("  x=%+.1fσ  gaussian %.3f  linear %.3f  triangular %.3f\n",
			p.X, p.Gaussian, p.Linear, p.Triangular)
	}

	fmt.Println("\ntraining the WBSN classifier for the Figure 5 study...")
	r := experiments.NewRunner(experiments.Options{
		Seed: 11, Scale: 0.2, PopSize: 12, Generations: 10, MinARR: 0.97,
	})
	res, err := r.Figure5()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nFigure 5 — NDR/ARR Pareto fronts:")
	chart(res)

	for _, arr := range []float64{0.97, 0.985} {
		g, _ := experiments.NDRAtARROnFront(res.Gaussian, arr)
		l, _ := experiments.NDRAtARROnFront(res.Linear, arr)
		t, _ := experiments.NDRAtARROnFront(res.Triangular, arr)
		fmt.Printf("NDR at ARR>=%.1f%%:  gaussian %5.1f%%   linear %5.1f%%   triangular %5.1f%%\n",
			100*arr, 100*g, 100*l, 100*t)
	}
	fmt.Println("\n(the paper's reading: gaussian and linear stay close at high ARR;")
	fmt.Println(" the triangular MF collapses because its hard zero beyond 2S kills")
	fmt.Println(" fuzzy products and rejects beats wholesale)")
}

// chart renders the three fronts on a rough ASCII grid: x = ARR 90..100%,
// y = NDR 50..100%.
func chart(res experiments.Figure5Result) {
	const w, h = 61, 16
	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	plot := func(front []metrics.Point, ch byte) {
		for _, p := range front {
			x := int((p.ARR - 0.90) / 0.10 * float64(w-1))
			y := int((1.00 - p.NDR) / 0.50 * float64(h-1))
			if x < 0 || x >= w || y < 0 || y >= h {
				continue
			}
			grid[y][x] = ch
		}
	}
	plot(res.Gaussian, 'G')
	plot(res.Linear, 'L')
	plot(res.Triangular, 'T')
	fmt.Println("  NDR 100% ┐   (G gaussian, L linear, T triangular)")
	for _, row := range grid {
		fmt.Printf("           │%s\n", string(row))
	}
	fmt.Printf("   NDR 50%% └%s\n", strings.Repeat("─", w))
	fmt.Printf("            ARR 90%%%sARR 100%%\n", strings.Repeat(" ", w-16))
}
