// Holter: a long-recording WBSN monitoring simulation.
//
// A trained node (Figure 6 of the paper) streams a multi-hour 3-lead
// recording with ectopic beats: filtering, peak detection, embedded RP+NFC
// classification on every beat, 3-lead MMD delineation only for beats
// flagged abnormal, and the gated radio-reporting policy. At the end it
// prints the duty-cycle and energy accounting of Sec. IV-D/E.
//
// Run with: go run ./examples/holter [-hours 2]
package main

import (
	"flag"
	"fmt"
	"log"

	"rpbeat/internal/beatset"
	"rpbeat/internal/core"
	"rpbeat/internal/ecgsyn"
	"rpbeat/internal/energy"
	"rpbeat/internal/fixp"
	"rpbeat/internal/platform"
	"rpbeat/internal/wbsn"
)

func main() {
	hours := flag.Float64("hours", 1, "recording duration to simulate")
	flag.Parse()
	log.SetFlags(0)

	// Train a node (reduced budget; a deployment would load a model file).
	fmt.Println("training the node's classifier...")
	ds, err := beatset.Build(beatset.Config{Seed: 3, Scale: 0.08})
	if err != nil {
		log.Fatal(err)
	}
	model, _, err := core.Train(ds, core.Config{
		Coeffs: 8, Downsample: 4, PopSize: 10, Generations: 8, MinARR: 0.97, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	emb, err := model.Quantize(fixp.MFLinear)
	if err != nil {
		log.Fatal(err)
	}
	node, err := wbsn.NewNode(emb)
	if err != nil {
		log.Fatal(err)
	}

	// Stream the recording in 10-minute segments (as a node would process
	// buffered epochs), accumulating beat reports and traffic.
	const segmentSec = 600
	segments := int(*hours*3600/segmentSec + 0.5)
	if segments < 1 {
		segments = 1
	}
	fmt.Printf("simulating %.1f h of 3-lead ECG with 8%% PVCs (%d segments)...\n",
		float64(segments)*segmentSec/3600, segments)

	var traffic energy.TrafficCounts
	var beats, delineated int
	var decisions [4]int
	for s := 0; s < segments; s++ {
		rec := ecgsyn.Synthesize(ecgsyn.RecordSpec{
			Name: "holter", Seconds: segmentSec, Seed: uint64(1000 + s), PVCRate: 0.08,
		})
		leads := make([][]int32, ecgsyn.NumLeads)
		for l := range leads {
			leads[l] = rec.Leads[l]
		}
		res, err := node.Process(leads)
		if err != nil {
			log.Fatal(err)
		}
		beats += len(res.Beats)
		delineated += res.DelineatedBeats
		traffic.NormalDiscarded += res.Traffic.NormalDiscarded
		traffic.FullReports += res.Traffic.FullReports
		for _, b := range res.Beats {
			decisions[b.Decision]++
		}
	}
	activation := float64(delineated) / float64(beats)
	fmt.Printf("\nprocessed %d beats: N=%d L=%d V=%d U=%d\n",
		beats, decisions[0], decisions[1], decisions[2], decisions[3])
	fmt.Printf("delineation activated for %d beats (%.1f%%)\n", delineated, 100*activation)

	// Duty-cycle model (Table III) at the observed activation rate.
	rows := platform.TableIII(platform.SystemParams{
		Fs: 360, BeatsPerSec: float64(beats) / (float64(segments) * segmentSec),
		ActivationRate: activation,
		K:              emb.K, D: emb.D, ClassifierData: emb.MemoryBytes(),
		Leads: ecgsyn.NumLeads, Model: platform.Icyflex(),
	})
	fmt.Println("\nmodeled on the IcyHeart SoC @6 MHz:")
	for _, r := range rows {
		fmt.Println("  " + r.String())
	}

	// Energy accounting (Sec. IV-E).
	rep, err := energy.Analyze(energy.Params{
		Traffic:       traffic,
		StreamSeconds: float64(segments) * segmentSec,
		DutyGated:     rows[3].Duty,
		DutyAlwaysOn:  rows[2].Duty,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nenergy over the recording:\n")
	fmt.Printf("  radio:   %.2f mJ gated vs %.2f mJ always-full  (-%.0f%%)\n",
		1e3*rep.RadioGatedJ, 1e3*rep.RadioBaselineJ, 100*rep.RadioReduction)
	fmt.Printf("  compute: %.2f mJ gated vs %.2f mJ always-on    (-%.0f%%)\n",
		1e3*rep.ComputeGatedJ, 1e3*rep.ComputeBaselineJ, 100*rep.ComputeReduction)
	fmt.Printf("  estimated total node energy reduction: %.0f%%\n", 100*rep.TotalReduction)
}
