// Embedded: float-vs-integer fidelity of the quantization path.
//
// Trains a model, quantizes it per Sec. III-B (packed 2-bit projection,
// 4-segment linear MFs, shift-normalized fuzzification, Q15 defuzzification)
// and compares the two pipelines beat by beat: decision agreement, fuzzy-
// ratio distortion, and the memory footprint the node pays.
//
// Run with: go run ./examples/embedded
package main

import (
	"fmt"
	"log"
	"math"

	"rpbeat/internal/beatset"
	"rpbeat/internal/core"
	"rpbeat/internal/fixp"
	"rpbeat/internal/metrics"
	"rpbeat/internal/nfc"
)

func main() {
	log.SetFlags(0)

	ds, err := beatset.Build(beatset.Config{Seed: 5, Scale: 0.08})
	if err != nil {
		log.Fatal(err)
	}
	model, _, err := core.Train(ds, core.Config{
		Coeffs: 8, Downsample: 4, PopSize: 10, Generations: 8, MinARR: 0.97, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	emb, err := model.Quantize(fixp.MFLinear)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("node artifact:")
	fmt.Printf("  projection: %dx%d ternary matrix, packed %d B (dense int8 would be %d B)\n",
		emb.K, emb.D, emb.P.ByteSize(), emb.K*emb.D)
	fmt.Printf("  MF tables:  %d B   total data: %d B (fits in the 1.64 KB budget of Table III)\n",
		emb.Cls.TableBytes(), emb.MemoryBytes())

	// Per-beat comparison at the shared operating point.
	alpha := model.AlphaTrain
	embAlpha := fixp.AlphaToQ15(alpha)
	agree, disagree, uOnly := 0, 0, 0
	var maxRatioErr float64
	grades := make([]uint16, emb.K*fixp.NumClasses)
	for _, bi := range ds.Test {
		wf := ds.FloatWindow(bi, model.Downsample)
		df := model.MF.Classify(model.P.Project(wf), alpha)

		wi := ds.IntWindow(bi, emb.Downsample)
		u := emb.P.ProjectInt(wi)
		fv := emb.Cls.FuzzyValues(u, grades)
		di := fixp.Defuzzify(fv, embAlpha)

		switch {
		case df == di:
			agree++
		case df == nfc.DecideU || di == nfc.DecideU:
			uOnly++
		default:
			disagree++
		}
		// Fuzzy-ratio distortion between the top two integer classes,
		// against the float ratio (only when both are meaningfully alive).
		ff := model.MF.Fuzzy(model.P.Project(wf))
		for a := 0; a < 3; a++ {
			for b := 0; b < 3; b++ {
				// Only near-balanced, well-resolved pairs: classes far below
				// the maximum keep few significant bits by design (Sec.
				// III-B), so their ratios are not meaningful to compare.
				if a == b || fv[a] < 1<<20 || fv[b] < 1<<20 || ff[b] < 1e-6 {
					continue
				}
				ri := float64(fv[a]) / float64(fv[b])
				rf := ff[a] / ff[b]
				if rf < 0.5 || rf > 2 {
					continue
				}
				if e := math.Abs(ri-rf) / rf; e > maxRatioErr {
					maxRatioErr = e
				}
			}
		}
	}
	total := len(ds.Test)
	fmt.Printf("\ndecision agreement over %d beats at alpha=%.4f:\n", total, alpha)
	fmt.Printf("  identical: %d (%.2f%%)\n", agree, 100*float64(agree)/float64(total))
	fmt.Printf("  reject-boundary differences (one side U): %d (%.2f%%)\n", uOnly, 100*float64(uOnly)/float64(total))
	fmt.Printf("  class flips: %d (%.2f%%)\n", disagree, 100*float64(disagree)/float64(total))
	fmt.Printf("  worst fuzzy-ratio deviation from the float reference: %.1fx\n", 1+maxRatioErr)
	fmt.Println("  (dominated by the deliberate MF linearization, not by the integer")
	fmt.Println("   arithmetic: grades deviate up to ~20% per coefficient from the")
	fmt.Println("   Gaussian and the deviations compound across the product)")

	// Operating points of both pipelines.
	for _, p := range []struct {
		name  string
		evals []metrics.Eval
	}{
		{"float", model.Evaluate(ds, ds.Test)},
		{"integer", emb.Evaluate(ds, ds.Test)},
	} {
		pt, _, err := metrics.NDRAtARR(p.evals, 0.97)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s pipeline at ARR>=97%%: NDR %.2f%% (alpha %.4f)\n", p.name, 100*pt.NDR, pt.Alpha)
	}
}
