// Quickstart: the five-minute path through the library.
//
//  1. Build a (reduced) synthetic heartbeat dataset with the Table I
//     composition.
//  2. Train the RP + neuro-fuzzy classifier with the paper's two-step
//     methodology (GA over projections, SCG over membership functions).
//  3. Quantize it for the sensor node (packed matrix, linear integer MFs).
//  4. Evaluate both pipelines at the ARR >= 97% operating point.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"rpbeat/internal/beatset"
	"rpbeat/internal/core"
	"rpbeat/internal/fixp"
	"rpbeat/internal/metrics"
)

func main() {
	log.SetFlags(0)

	// 1. Dataset: 10% of the full composition keeps this example fast.
	fmt.Println("building dataset (10% scale)...")
	ds, err := beatset.Build(beatset.Config{Seed: 7, Scale: 0.10})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d beats; train1 %v; train2 %v\n",
		len(ds.Beats), ds.CountByClass(ds.Train1), ds.CountByClass(ds.Train2))

	// 2. Train. The paper uses PopSize 20 x 30 generations; a smaller GA
	// budget is enough to see the methodology work on reduced data.
	fmt.Println("training (GA 10x10, k=8, 90 Hz windows)...")
	model, stats, err := core.Train(ds, core.Config{
		Coeffs:      8,
		Downsample:  4, // 360 Hz -> 90 Hz, 50-sample windows
		PopSize:     10,
		Generations: 10,
		MinARR:      0.97,
		Seed:        7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  best training fitness (NDR@ARR>=97): %.2f%% after %d evaluations\n",
		100*stats.BestFitness, stats.FitnessEvals)

	// 3. Quantize for the node.
	emb, err := model.Quantize(fixp.MFLinear)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  embedded artifact: %d B (packed matrix %d B + MF tables %d B)\n",
		emb.MemoryBytes(), emb.P.ByteSize(), emb.Cls.TableBytes())

	// 4. Evaluate float and integer pipelines on the full test split.
	for _, pipeline := range []struct {
		name  string
		evals []metrics.Eval
	}{
		{"float (PC)", model.Evaluate(ds, ds.Test)},
		{"integer (WBSN)", emb.Evaluate(ds, ds.Test)},
	} {
		pt, conf, err := metrics.NDRAtARR(pipeline.evals, 0.97)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s pipeline @ alpha=%.4f:\n  NDR %.2f%%  ARR %.2f%%\n%s",
			pipeline.name, pt.Alpha, 100*pt.NDR, 100*pt.ARR, conf.String())
	}

	// Classify one beat by hand to show the low-level API.
	w := ds.IntWindow(ds.Test[0], emb.Downsample)
	fmt.Printf("single-beat decision for test beat 0 (true class %v): %v\n",
		ds.Beats[ds.Test[0]].Class, emb.Classify(w))
}
