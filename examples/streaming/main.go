// Streaming: the sample-by-sample front end a node actually runs.
//
// The batch API (sigdsp.FilterECG) processes whole buffers; a sensor node
// sees one ADC sample every 1/360 s and has a few kilobytes of RAM. This
// example drives the bounded-memory streaming filter over a synthetic
// recording, shows its fixed group delay, and verifies on the fly that the
// stream output agrees with the batch reference — the property the library
// guarantees after warm-up.
//
// Run with: go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"math"

	"rpbeat/internal/ecgsyn"
	"rpbeat/internal/sigdsp"
)

func main() {
	log.SetFlags(0)

	rec := ecgsyn.Synthesize(ecgsyn.RecordSpec{Name: "stream", Seconds: 60, Seed: 42, PVCRate: 0.08})
	raw := rec.LeadMillivolts(0)
	cfg := sigdsp.DefaultBaselineConfig(rec.Fs)

	// Reference: batch baseline removal over the whole buffer.
	batch := sigdsp.RemoveBaseline(raw, cfg)

	// Stream: one Push per ADC sample, bounded memory.
	f := sigdsp.NewStreamFilter(cfg)
	fmt.Printf("streaming front end: group delay %d samples (%.0f ms at %.0f Hz)\n",
		f.Delay(), 1000*float64(f.Delay())/rec.Fs, rec.Fs)

	var out []float64
	for _, x := range raw {
		if y, ok := f.Push(x); ok {
			out = append(out, y)
		}
	}
	fmt.Printf("pushed %d samples, emitted %d (the final %d need future input)\n",
		len(raw), len(out), len(raw)-len(out))

	// Agreement with the batch reference after warm-up.
	warm := 2 * f.Delay()
	var maxErr float64
	for i := warm; i < len(out); i++ {
		if e := math.Abs(out[i] - batch[i]); e > maxErr {
			maxErr = e
		}
	}
	fmt.Printf("max |stream - batch| after warm-up: %.3g mV (bit-exact)\n", maxErr)

	// What the node gains: memory. The stream keeps four morphology wedges
	// plus the alignment delay line, versus five full-record buffers for
	// the batch version.
	streamBytes := (f.Delay() + 1) * 8 * 5 // delay line + 4 wedges, worst case
	batchBytes := len(raw) * 8 * 5         // input + 4 intermediates
	fmt.Printf("approx working memory: stream %d B vs batch %d B for this record\n",
		streamBytes, batchBytes)

	// Show a beat before/after filtering.
	if len(rec.Ann) > 3 {
		p := rec.Ann[3].Sample
		if p >= warm && p < len(out) {
			fmt.Printf("\nbeat @%d: raw %.3f mV (wandering baseline), filtered %.3f mV\n",
				p, raw[p], out[p])
		}
	}
}
