// Serving: the classifier as a network service.
//
// Everything before this example runs the pipeline in-process. A monitoring
// deployment looks different: one server holds the trained models, and many
// lightweight acquisition clients (one per patient) push samples at it —
// whole records for retrospective analysis, or chunk-by-chunk as the ADC
// fills buffers. cmd/rpserve is that server; this example boots its handler
// on a loopback port, trains a small model for its catalog, and exercises
// both data paths with a plain HTTP client, exactly as an external program
// would:
//
//   - POST /v1/classify: a whole record in one JSON request (batch path),
//     then the same record again over the binary sample transport
//     (application/x-rpbeat-samples) to show the ~5x uplink saving;
//   - POST /v1/stream: the same record as 1-second NDJSON chunks, with beat
//     labels streaming back while the "acquisition" is still running.
//
// Run with: go run ./examples/serve
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"time"

	"rpbeat/internal/beatset"
	"rpbeat/internal/catalog"
	"rpbeat/internal/core"
	"rpbeat/internal/ecgsyn"
	"rpbeat/internal/pipeline"
	"rpbeat/internal/serve"
	"rpbeat/internal/wire"
)

func main() {
	log.SetFlags(0)

	// --- train a small model and stand the server up ---
	fmt.Println("training a reduced-scale model for the catalog...")
	ds, err := beatset.Build(beatset.Config{Seed: 31, Scale: 0.03})
	if err != nil {
		log.Fatal(err)
	}
	m, _, err := core.Train(ds, core.Config{
		Coeffs: 8, Downsample: 4, PopSize: 4, Generations: 2,
		SCGIters: 50, MinARR: 0.9, Seed: 31,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The catalog versions models as name@vN; the first Put becomes the
	// default. cmd/rpserve adds persistence (-models-dir) and the admin
	// endpoints let clients upload more versions at runtime.
	cat := catalog.New()
	man, err := cat.Put("default", m, nil)
	if err != nil {
		log.Fatal(err)
	}
	entry, err := cat.Snapshot().Resolve(man.Ref())
	if err != nil {
		log.Fatal(err)
	}
	eng := pipeline.NewEngine(cat, pipeline.EngineConfig{})
	defer eng.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	base := "http://" + ln.Addr().String()
	go http.Serve(ln, serve.NewHandler(eng, serve.HandlerConfig{}))
	fmt.Printf("rpserve handler listening on %s (model %s: %d bytes on-node, digest %.12s…)\n\n",
		base, man.Ref(), entry.Emb.MemoryBytes(), man.Digest)

	// --- a "patient": 60 s of synthetic ECG with ectopic beats ---
	rec := ecgsyn.Synthesize(ecgsyn.RecordSpec{Name: "patient-7", Seconds: 60, Seed: 7, PVCRate: 0.15})
	lead := rec.Leads[0]

	// --- batch path: the whole record in one request ---
	body, _ := json.Marshal(serve.ClassifyRequest{Samples: lead})
	resp, err := http.Post(base+"/v1/classify", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	var batch serve.ClassifyResponse
	if err := json.NewDecoder(resp.Body).Decode(&batch); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("POST /v1/classify: %d beats in one request: N=%d L=%d V=%d U=%d\n",
		batch.Total, batch.Counts["N"], batch.Counts["L"], batch.Counts["V"], batch.Counts["U"])

	// --- the same record over the binary sample transport: what a
	// bandwidth-bound acquisition node would actually uplink. Each frame
	// delta-codes its samples (int8 first differences when they fit), so
	// the record travels at ~1 byte/sample instead of ~5 as decimal JSON;
	// the server negotiates on the Content-Type and answers identically.
	binBody := wire.AppendFrames(nil, lead, 2048)
	resp, err = http.Post(base+"/v1/classify", wire.ContentTypeSamples, bytes.NewReader(binBody))
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		log.Fatalf("binary classify: %d: %s", resp.StatusCode, bytes.TrimSpace(raw))
	}
	var binBatch serve.ClassifyResponse
	if err := json.NewDecoder(resp.Body).Decode(&binBatch); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	if binBatch.Total != batch.Total {
		log.Fatalf("binary transport classified %d beats, JSON %d", binBatch.Total, batch.Total)
	}
	fmt.Printf("POST /v1/classify (binary frames): same %d beats from %d request bytes (JSON took %d, %.1fx more)\n",
		binBatch.Total, len(binBody), len(body), float64(len(body))/float64(len(binBody)))

	// --- streaming path: 1-second chunks through an io.Pipe, so the request
	// body is still being produced while beat labels flow back ---
	chunkReader, chunkWriter := io.Pipe()
	go func() {
		enc := json.NewEncoder(chunkWriter)
		for off := 0; off < len(lead); off += 360 {
			end := off + 360
			if end > len(lead) {
				end = len(lead)
			}
			if err := enc.Encode(serve.StreamChunk{Samples: lead[off:end]}); err != nil {
				chunkWriter.CloseWithError(err)
				return
			}
		}
		chunkWriter.Close()
	}()

	start := time.Now()
	resp2, err := http.Post(base+"/v1/stream", "application/x-ndjson", chunkReader)
	if err != nil {
		log.Fatal(err)
	}
	defer resp2.Body.Close()

	streamed := 0
	firstBeat := time.Duration(0)
	var done serve.StreamDone
	sc := bufio.NewScanner(resp2.Body)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	for sc.Scan() {
		var line struct {
			Sample *int            `json:"sample"`
			Class  string          `json:"class"`
			Done   bool            `json:"done"`
			Beats  int             `json:"beats"`
			Error  json.RawMessage `json:"error"` // typed {"code","message"} body
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			log.Fatal(err)
		}
		switch {
		case len(line.Error) > 0:
			log.Fatalf("server: %s", line.Error)
		case line.Done:
			done = serve.StreamDone{Done: true, Beats: line.Beats}
		case line.Sample != nil:
			if streamed == 0 {
				firstBeat = time.Since(start)
			}
			streamed++
			if streamed <= 3 {
				fmt.Printf("  beat @%6d -> %s  (arrived %v after stream open)\n",
					*line.Sample, line.Class, time.Since(start).Round(time.Millisecond))
			}
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("POST /v1/stream: %d beats over %d chunks in %v\n",
		done.Beats, (len(lead)+359)/360, time.Since(start).Round(time.Millisecond))

	fmt.Printf("\nfirst beat arrived %v after the stream opened — classification\n", firstBeat.Round(time.Millisecond))
	fmt.Println("overlaps acquisition; the batch path had to wait for the whole record.")

	// The two paths agree beat-for-beat away from the record tail (the
	// pipeline's bit-identity guarantee; see internal/pipeline).
	if streamed == batch.Total {
		fmt.Printf("both paths classified the same %d beats.\n", streamed)
	} else {
		fmt.Printf("streaming classified %d of %d beats: the batch detector also sees\n", streamed, batch.Total)
		fmt.Println("the record tail, which a live stream cannot (see internal/pipeline).")
	}
}
