module rpbeat

go 1.24
