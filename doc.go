// Package rpbeat reproduces "A Methodology for Embedded Classification of
// Heartbeats Using Random Projections" (Braojos, Ansaloni, Atienza —
// DATE 2013) as a pure-stdlib Go library.
//
// The paper's contribution — a WBSN-ready heartbeat classifier built from
// Achlioptas random projections and a neuro-fuzzy classifier, trained with a
// genetic algorithm over projections and scaled conjugate gradient over
// membership functions, then quantized to an integer-only pipeline — lives
// in internal/core. Every substrate it relies on is implemented here too:
// see DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record of every table and figure.
//
// The benchmarks in bench_test.go regenerate each experiment at a reduced
// scale; cmd/rpbench regenerates them at full scale, and its -json mode
// writes the BENCH_<n>.json performance snapshots described in
// BENCHMARKS.md. The memory/speed trade between the three projection-matrix
// layouts (dense int8, 2-bit packed, sparse index lists) is laid out in
// DESIGN.md's "kernel memory layouts" section.
package rpbeat
