package rpbeat

// The binary-head kernel contract, enforced: at the paper geometry (k=8
// coefficients over 50-sample windows at 90 Hz) the packed 1-bit classifier
// must beat the fuzzy integer kernel by at least 3x per beat, with zero
// allocations on both sides. cmd/rpbench records the same pair as
// kernel/classify_per_beat_8x50 and kernel/classify_per_beat_bitemb_8x50 in
// BENCH_<n>.json; this test is the CI floor under those rows.

import (
	"testing"

	"rpbeat/internal/bitemb"
	"rpbeat/internal/core"
	"rpbeat/internal/fixp"
	"rpbeat/internal/nfc"
	"rpbeat/internal/rng"
	"rpbeat/internal/rp"
)

// Fabricated models, the rpbench idiom: classification cost is
// data-independent (branch-free kernels), so random parameters measure the
// same kernel as trained ones while keeping this test training-free.

func speedFuzzyEmbedded(r *rng.Rand, k, d int) (*core.Embedded, error) {
	mf := nfc.NewParams(k)
	for i := range mf.C {
		mf.C[i] = float64(r.Intn(4000) - 2000)
		mf.Sigma[i] = 200 + float64(r.Intn(800))
	}
	m := &core.Model{
		K: k, D: d, Downsample: 4,
		P: rp.NewRandom(r, k, d), MF: mf, AlphaTrain: 0.1, MinARR: 0.97,
	}
	return m.Quantize(fixp.MFLinear)
}

func speedBitembEmbedded(r *rng.Rand, k, d int) (*core.Embedded, error) {
	bp := &bitemb.Params{K: k, Thresholds: make([]int32, k)}
	for j := range bp.Thresholds {
		bp.Thresholds[j] = int32(r.Intn(4000) - 2000)
	}
	for l := range bp.Protos {
		bp.Protos[l] = make([]uint64, bitemb.Words(k))
		for j := 0; j < k; j++ {
			if r.Intn(2) == 1 {
				bp.Protos[l][j/64] |= 1 << uint(j&63)
			}
		}
		bp.Radii[l] = uint16(k)
	}
	m := &core.Model{
		Kind: core.KindBitemb, K: k, D: d, Downsample: 4,
		P: rp.NewVerySparse(r, k, d), Bit: bp, AlphaTrain: 0.1, MinARR: 0.97,
	}
	return m.Quantize(fixp.MFLinear)
}

func TestBitembKernelSpeedupFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison")
	}
	if raceEnabled {
		t.Skip("race instrumentation distorts the kernel timing ratio; CI runs this un-instrumented")
	}
	r := rng.New(7)
	const k, d = 8, 50
	fuzzy, err := speedFuzzyEmbedded(r, k, d)
	if err != nil {
		t.Fatal(err)
	}
	bit, err := speedBitembEmbedded(r, k, d)
	if err != nil {
		t.Fatal(err)
	}
	w := make([]int32, d)
	for i := range w {
		w[i] = int32(r.Intn(2000) - 1000)
	}
	perBeat := func(emb *core.Embedded) func(b *testing.B) {
		s := core.NewScratch(emb)
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = emb.ClassifyInto(w, s)
			}
		}
	}

	// Best of three rounds per kernel: the floor is about relative kernel
	// cost, not scheduler noise.
	best := func(f func(b *testing.B)) (nsPerOp float64, allocs int64) {
		nsPerOp = 1e18
		for round := 0; round < 3; round++ {
			res := testing.Benchmark(f)
			if ns := float64(res.T.Nanoseconds()) / float64(res.N); ns < nsPerOp {
				nsPerOp = ns
			}
			allocs = res.AllocsPerOp()
		}
		return nsPerOp, allocs
	}
	fuzzyNs, fuzzyAllocs := best(perBeat(fuzzy))
	bitNs, bitAllocs := best(perBeat(bit))
	if fuzzyAllocs != 0 || bitAllocs != 0 {
		t.Fatalf("per-beat kernels must be allocation-free: fuzzy %d, bitemb %d allocs/op",
			fuzzyAllocs, bitAllocs)
	}
	ratio := fuzzyNs / bitNs
	t.Logf("fuzzy %.1f ns/beat, bitemb %.1f ns/beat: %.1fx", fuzzyNs, bitNs, ratio)
	if ratio < 3 {
		t.Fatalf("bitemb kernel %.1f ns/beat is only %.2fx the fuzzy kernel's %.1f ns/beat, want >= 3x",
			bitNs, ratio, fuzzyNs)
	}
}
